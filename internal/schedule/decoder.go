package schedule

import (
	"fmt"
	"sync"

	"robsched/internal/platform"
)

// Decoder is the fast path for decoding GA chromosomes (scheduling string +
// assignment string) into schedules. It trusts the caller's invariant that
// the order is a topological order of the task graph — the paper's operators
// guarantee it by construction — and therefore skips the O(V+E) precedence
// re-validation FromOrder performs. All transient construction state comes
// from a package-level pool, so steady-state decoding costs exactly two heap
// allocations per schedule (its int32 and float64 arenas).
//
// A Decoder is safe for concurrent use by multiple goroutines as long as
// each goroutine decodes distinct Schedule targets.
type Decoder struct {
	w *platform.Workload
}

// NewDecoder returns a decoder for the given workload.
func NewDecoder(w *platform.Workload) *Decoder { return &Decoder{w: w} }

// Decode builds the schedule of a trusted (order, proc) chromosome.
func (d *Decoder) Decode(order, proc []int) (*Schedule, error) {
	s := new(Schedule)
	if err := d.DecodeInto(s, order, proc); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeInto builds the schedule into an existing (typically embedded)
// Schedule value, overwriting all of its state. On error the target is left
// in an unspecified state and must not be used.
func (d *Decoder) DecodeInto(s *Schedule, order, proc []int) error {
	return decodeOrder(s, d.w, order, proc, true)
}

// decodeScratch holds every transient buffer one schedule construction
// needs. Instances are pooled; ensure grows them to the workload at hand.
type decodeScratch struct {
	proc   []int32 // validated task -> processor copy
	porder []int32 // tasks grouped by processor
	dsucc  []int32 // disjunctive successor of each task, -1 if none
	dpred  []int32 // disjunctive predecessor of each task, -1 if none
	cursor []int32 // per-node fill cursor, then Kahn indegrees
	pos    []int32 // position of each task in the scheduling string
	poff   []int32 // m+1 per-processor offsets into porder
	pcur   []int32 // per-processor fill cursors
	plast  []int32 // last task seen on each processor, -1 if none
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

func getScratch(n, m int) *decodeScratch {
	sc := scratchPool.Get().(*decodeScratch)
	if cap(sc.proc) < n {
		sc.proc = make([]int32, n)
		sc.porder = make([]int32, n)
		sc.dsucc = make([]int32, n)
		sc.dpred = make([]int32, n)
		sc.cursor = make([]int32, n)
		sc.pos = make([]int32, n)
	}
	if cap(sc.poff) < m+1 {
		sc.poff = make([]int32, m+1)
		sc.pcur = make([]int32, m)
		sc.plast = make([]int32, m)
	}
	return sc
}

func putScratch(sc *decodeScratch) { scratchPool.Put(sc) }

// decodeOrder is the shared implementation behind FromOrder, FromOrderTrusted
// and Decoder: prepass over the scheduling string, then the CSR build.
func decodeOrder(s *Schedule, w *platform.Workload, order, proc []int, trusted bool) error {
	sc := getScratch(w.N(), w.M())
	defer putScratch(sc)
	nDisj, err := sc.prepassFromOrder(w, order, proc, trusted)
	if err != nil {
		return err
	}
	return buildInto(s, w, sc, nDisj)
}

// prepassFromOrder validates the chromosome and computes the per-processor
// grouping and the disjunctive arcs into the scratch. It returns the number
// of disjunctive arcs. The trusted path skips only the O(V+E) precedence
// scan; permutation and processor-range checks are O(V) and always run.
func (sc *decodeScratch) prepassFromOrder(w *platform.Workload, order, proc []int, trusted bool) (int, error) {
	g := w.G
	n, m := w.N(), w.M()
	if len(order) != n {
		return 0, fmt.Errorf("schedule: scheduling string has %d entries, want %d", len(order), n)
	}
	if len(proc) != n {
		return 0, fmt.Errorf("schedule: proc has %d entries, want %d", len(proc), n)
	}
	pos := sc.pos[:n]
	for v := range pos {
		pos[v] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n || pos[v] != -1 {
			return 0, fmt.Errorf("schedule: scheduling string is not a permutation of the tasks")
		}
		pos[v] = int32(i)
	}
	if !trusted {
		for u := 0; u < n; u++ {
			for _, a := range g.Successors(u) {
				if pos[u] > pos[a.To] {
					return 0, fmt.Errorf("schedule: scheduling string is not a topological order of the task graph")
				}
			}
		}
	}
	sproc := sc.proc[:n]
	pcount := sc.poff[:m+1]
	for p := range pcount {
		pcount[p] = 0
	}
	for v, p := range proc {
		if p < 0 || p >= m {
			return 0, fmt.Errorf("schedule: task %d assigned to processor %d out of range [0,%d)", v, p, m)
		}
		sproc[v] = int32(p)
		pcount[p+1]++
	}
	for p := 1; p <= m; p++ {
		pcount[p] += pcount[p-1]
	}
	// Fill the per-processor grouping in scheduling-string order and detect
	// the disjunctive arcs between consecutive same-processor tasks that are
	// not already data edges.
	pcur := sc.pcur[:m]
	plast := sc.plast[:m]
	for p := 0; p < m; p++ {
		pcur[p] = pcount[p]
		plast[p] = -1
	}
	dsucc := sc.dsucc[:n]
	dpred := sc.dpred[:n]
	for v := range dsucc {
		dsucc[v] = -1
		dpred[v] = -1
	}
	porder := sc.porder[:n]
	nDisj := 0
	for _, v := range order {
		p := proc[v]
		porder[pcur[p]] = int32(v)
		pcur[p]++
		if u := plast[p]; u >= 0 && !g.HasEdge(int(u), v) {
			dsucc[u] = int32(v)
			dpred[v] = u
			nDisj++
		}
		plast[p] = int32(v)
	}
	return nDisj, nil
}

// prepassFromLists is prepassFromOrder for explicit, already-validated
// per-processor orders (the New constructor).
func (sc *decodeScratch) prepassFromLists(w *platform.Workload, proc []int, procOrder [][]int) int {
	g := w.G
	n, m := w.N(), w.M()
	sproc := sc.proc[:n]
	for v, p := range proc {
		sproc[v] = int32(p)
	}
	dsucc := sc.dsucc[:n]
	dpred := sc.dpred[:n]
	for v := range dsucc {
		dsucc[v] = -1
		dpred[v] = -1
	}
	porder := sc.porder[:n]
	poff := sc.poff[:m+1]
	k := int32(0)
	nDisj := 0
	for p, list := range procOrder {
		poff[p] = k
		for i, v := range list {
			porder[k] = int32(v)
			k++
			if i > 0 && !g.HasEdge(list[i-1], v) {
				dsucc[list[i-1]] = int32(v)
				dpred[v] = int32(list[i-1])
				nDisj++
			}
		}
	}
	poff[m] = k
	return nDisj
}

func carveI(a []int32, k int) ([]int32, []int32)       { return a[:k:k], a[k:] }
func carveF(a []float64, k int) ([]float64, []float64) { return a[:k:k], a[k:] }

// buildInto constructs the CSR disjunctive graph, its topological order and
// the expected-duration analysis from the scratch prepass, allocating
// exactly two arenas (one int32, one float64). The FIFO Kahn pass matches
// the legacy slice-of-slices construction arc for arc, so topological orders
// — and therefore every downstream result — are bit-identical to it.
func buildInto(s *Schedule, w *platform.Workload, sc *decodeScratch, nDisj int) error {
	g, sys := w.G, w.Sys
	n, m := w.N(), w.M()
	nE := g.EdgeCount() + nDisj

	ints := make([]int32, 5*n+m+3+2*nE)
	s.proc, ints = carveI(ints, n)
	s.topo, ints = carveI(ints, n)
	s.porder, ints = carveI(ints, n)
	s.porderOff, ints = carveI(ints, m+1)
	s.succOff, ints = carveI(ints, n+1)
	s.predOff, ints = carveI(ints, n+1)
	s.succTo, ints = carveI(ints, nE)
	s.predTo, _ = carveI(ints, nE)
	floats := make([]float64, 5*n+2*nE)
	s.succComm, floats = carveF(floats, nE)
	s.predComm, floats = carveF(floats, nE)
	s.expDur, floats = carveF(floats, n)
	s.start, floats = carveF(floats, n)
	s.finish, floats = carveF(floats, n)
	s.bl, floats = carveF(floats, n)
	s.slack, _ = carveF(floats, n)

	s.w = w
	copy(s.proc, sc.proc[:n])
	copy(s.porder, sc.porder[:n])
	copy(s.porderOff, sc.poff[:m+1])

	// Offsets: each node's range holds its data arcs followed by its (at
	// most one) disjunctive arc.
	dsucc, dpred := sc.dsucc[:n], sc.dpred[:n]
	off := int32(0)
	for v := 0; v < n; v++ {
		s.succOff[v] = off
		off += int32(g.OutDegree(v))
		if dsucc[v] >= 0 {
			off++
		}
	}
	s.succOff[n] = off
	off = 0
	for v := 0; v < n; v++ {
		s.predOff[v] = off
		off += int32(g.InDegree(v))
		if dpred[v] >= 0 {
			off++
		}
	}
	s.predOff[n] = off

	// Data arcs, with the communication cost of each edge computed once and
	// mirrored into both directions.
	cur := sc.cursor[:n]
	for v := range cur {
		cur[v] = 0
	}
	for u := 0; u < n; u++ {
		base := s.succOff[u]
		pu := int(s.proc[u])
		for i, a := range g.Successors(u) {
			comm := sys.CommCost(pu, int(s.proc[a.To]), a.Data)
			k := base + int32(i)
			s.succTo[k] = int32(a.To)
			s.succComm[k] = comm
			j := s.predOff[a.To] + cur[a.To]
			cur[a.To]++
			s.predTo[j] = int32(u)
			s.predComm[j] = comm
		}
	}
	// Disjunctive arcs, zero cost (Eqn. 1), in the last slot of each range.
	for u := 0; u < n; u++ {
		if v := dsucc[u]; v >= 0 {
			k := s.succOff[u+1] - 1
			s.succTo[k] = v
			s.succComm[k] = 0
			j := s.predOff[v+1] - 1
			s.predTo[j] = int32(u)
			s.predComm[j] = 0
		}
	}

	// FIFO Kahn over G_s, writing the queue directly into topo; a shortfall
	// means the processor orders induced a cycle.
	indeg := sc.cursor[:n] // fill cursors are spent; reuse as indegrees
	for v := 0; v < n; v++ {
		indeg[v] = s.predOff[v+1] - s.predOff[v]
	}
	qlen := 0
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			s.topo[qlen] = int32(v)
			qlen++
		}
	}
	for head := 0; head < qlen; head++ {
		v := int(s.topo[head])
		for k := s.succOff[v]; k < s.succOff[v+1]; k++ {
			to := s.succTo[k]
			indeg[to]--
			if indeg[to] == 0 {
				s.topo[qlen] = to
				qlen++
			}
		}
	}
	if qlen != n {
		return fmt.Errorf("schedule: processor orders conflict with precedence constraints (disjunctive graph is cyclic)")
	}

	// Expected-duration analysis: ASAP start/finish, makespan M0, bottom
	// levels and slack (Definition 3.3).
	for v := 0; v < n; v++ {
		s.expDur[v] = w.ExpectedAt(v, int(s.proc[v]))
	}
	s.makespan = s.forward(s.expDur, s.start, s.finish)
	s.backward(s.expDur, s.bl)
	sum := 0.0
	s.minSlack = 0
	for v := 0; v < n; v++ {
		sl := s.makespan - s.bl[v] - s.start[v]
		// Clamp the tiny negative values floating-point subtraction can
		// produce on critical-path nodes.
		if sl < 0 && sl > -1e-9 {
			sl = 0
		}
		s.slack[v] = sl
		sum += sl
		if v == 0 || sl < s.minSlack {
			s.minSlack = sl
		}
	}
	s.avgSlack = sum / float64(n)
	return nil
}
