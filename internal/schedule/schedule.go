// Package schedule implements schedules and their semantics from Section 3
// of the paper: the per-processor task orders, the disjunctive graph G_s
// (Definition 3.1), the makespan of any duration realization as the critical
// path of G_s (Claim 3.2), and per-task / average slack (Definition 3.3).
//
// A Schedule is immutable once built. Construction precomputes one
// topological order of the disjunctive graph together with the communication
// cost of every arc, so that each Monte-Carlo realization costs a single
// O(V+E) longest-path pass with no allocation — the property that makes the
// paper's 100 graphs × 1000 realizations evaluation tractable.
package schedule

import (
	"fmt"
	"strings"

	"robsched/internal/dag"
	"robsched/internal/platform"
)

// arc is one edge of the disjunctive graph with its fixed communication
// cost. Disjunctive (same-processor ordering) arcs and same-processor data
// edges cost zero.
type arc struct {
	to   int
	comm float64
}

// Schedule is an immutable assignment of tasks to processors plus an
// execution order on each processor, together with the analysis of the
// schedule under expected task durations.
type Schedule struct {
	w         *platform.Workload
	proc      []int   // task -> processor
	procOrder [][]int // per-processor ordered task lists
	topo      []int   // topological order of the disjunctive graph
	succ      [][]arc // disjunctive-graph adjacency with comm costs
	pred      [][]arc

	// Analysis under expected durations.
	expDur   []float64 // expected duration of each task on its processor
	start    []float64 // earliest (ASAP) start times; equals top level
	finish   []float64
	makespan float64   // M0(s)
	bl       []float64 // bottom levels (including own duration)
	slack    []float64 // σ_i = M - Bl(i) - Tl(i)
	avgSlack float64
	minSlack float64
}

// New builds and validates a schedule from a task→processor map and
// per-processor orders. It returns an error if the assignment is not a
// partition of the tasks consistent with proc, or if the processor orders
// conflict with the task graph's precedence constraints (i.e. the
// disjunctive graph would be cyclic).
func New(w *platform.Workload, proc []int, procOrder [][]int) (*Schedule, error) {
	n, m := w.N(), w.M()
	if len(proc) != n {
		return nil, fmt.Errorf("schedule: proc has %d entries, want %d", len(proc), n)
	}
	if len(procOrder) != m {
		return nil, fmt.Errorf("schedule: procOrder has %d lists, want %d", len(procOrder), m)
	}
	seen := make([]bool, n)
	for p, list := range procOrder {
		for _, v := range list {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("schedule: task %d out of range on processor %d", v, p)
			}
			if seen[v] {
				return nil, fmt.Errorf("schedule: task %d appears more than once", v)
			}
			seen[v] = true
			if proc[v] != p {
				return nil, fmt.Errorf("schedule: task %d listed on processor %d but proc maps it to %d", v, p, proc[v])
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("schedule: task %d is not assigned", v)
		}
	}
	for v, p := range proc {
		if p < 0 || p >= m {
			return nil, fmt.Errorf("schedule: task %d assigned to processor %d out of range [0,%d)", v, p, m)
		}
	}
	s := &Schedule{
		w:         w,
		proc:      append([]int(nil), proc...),
		procOrder: make([][]int, m),
	}
	for p := range procOrder {
		s.procOrder[p] = append([]int(nil), procOrder[p]...)
	}
	if err := s.buildDisjunctive(); err != nil {
		return nil, err
	}
	s.analyze()
	return s, nil
}

// FromOrder builds a schedule from a global scheduling string (a topological
// order of the task graph) and a task→processor map; each processor executes
// its tasks in their relative order within the scheduling string. This is
// exactly the decoding of the paper's GA chromosome (Section 4.2.1).
func FromOrder(w *platform.Workload, order []int, proc []int) (*Schedule, error) {
	if !w.G.IsTopologicalOrder(order) {
		return nil, fmt.Errorf("schedule: scheduling string is not a topological order of the task graph")
	}
	m := w.M()
	procOrder := make([][]int, m)
	for _, v := range order {
		p := proc[v]
		if p < 0 || p >= m {
			return nil, fmt.Errorf("schedule: task %d assigned to processor %d out of range [0,%d)", v, p, m)
		}
		procOrder[p] = append(procOrder[p], v)
	}
	return New(w, proc, procOrder)
}

// buildDisjunctive constructs the adjacency of G_s = (V, E ∪ E'):
// the original data edges (with comm cost depending on the processors of the
// endpoints) plus zero-cost disjunctive arcs between consecutive tasks on
// the same processor that are not already connected. It also fixes one
// topological order of G_s, failing if the processor orders contradict the
// precedence constraints.
func (s *Schedule) buildDisjunctive() error {
	g, sys := s.w.G, s.w.Sys
	n := g.N()
	s.succ = make([][]arc, n)
	s.pred = make([][]arc, n)
	indeg := make([]int, n)
	addArc := func(u, v int, comm float64) {
		s.succ[u] = append(s.succ[u], arc{v, comm})
		s.pred[v] = append(s.pred[v], arc{u, comm})
		indeg[v]++
	}
	for _, e := range g.Edges() {
		addArc(e.From, e.To, sys.CommCost(s.proc[e.From], s.proc[e.To], e.Data))
	}
	for _, list := range s.procOrder {
		for i := 1; i < len(list); i++ {
			u, v := list[i-1], list[i]
			if !g.HasEdge(u, v) {
				addArc(u, v, 0) // disjunctive edge, zero data (Eqn. 1)
			}
		}
	}
	// Kahn over G_s; a shortfall means the processor orders induced a cycle.
	s.topo = make([]int, 0, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		s.topo = append(s.topo, v)
		for _, a := range s.succ[v] {
			indeg[a.to]--
			if indeg[a.to] == 0 {
				queue = append(queue, a.to)
			}
		}
	}
	if len(s.topo) != n {
		return fmt.Errorf("schedule: processor orders conflict with precedence constraints (disjunctive graph is cyclic)")
	}
	return nil
}

// analyze computes the expected-duration analysis: ASAP start/finish times,
// makespan M0, top/bottom levels and slack.
func (s *Schedule) analyze() {
	n := s.w.N()
	s.expDur = make([]float64, n)
	for v := 0; v < n; v++ {
		s.expDur[v] = s.w.ExpectedAt(v, s.proc[v])
	}
	s.start = make([]float64, n)
	s.finish = make([]float64, n)
	s.makespan = s.forward(s.expDur, s.start, s.finish)

	// Bottom levels over G_s: Bl(v) = dur(v) + max over successors of
	// (comm(v,u) + Bl(u)). Top level equals the ASAP start time.
	s.bl = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := s.topo[i]
		best := 0.0
		for _, a := range s.succ[v] {
			if c := a.comm + s.bl[a.to]; c > best {
				best = c
			}
		}
		s.bl[v] = s.expDur[v] + best
	}
	s.slack = make([]float64, n)
	sum := 0.0
	s.minSlack = 0
	for v := 0; v < n; v++ {
		sl := s.makespan - s.bl[v] - s.start[v]
		// Clamp the tiny negative values floating-point subtraction can
		// produce on critical-path nodes.
		if sl < 0 && sl > -1e-9 {
			sl = 0
		}
		s.slack[v] = sl
		sum += sl
		if v == 0 || sl < s.minSlack {
			s.minSlack = sl
		}
	}
	s.avgSlack = sum / float64(n)
}

// forward runs one ASAP longest-path pass over the disjunctive graph with
// the given durations, filling start and finish, and returns the makespan.
// start and finish must have length N.
func (s *Schedule) forward(dur, start, finish []float64) float64 {
	makespan := 0.0
	for _, v := range s.topo {
		st := 0.0
		for _, a := range s.pred[v] {
			if t := finish[a.to] + a.comm; t > st {
				st = t
			}
		}
		start[v] = st
		finish[v] = st + dur[v]
		if finish[v] > makespan {
			makespan = finish[v]
		}
	}
	return makespan
}

// MakespanWith returns the makespan of the schedule when task v takes
// dur[v] time units (durations already resolved for the assigned
// processors), per Claim 3.2: every task starts as soon as it is ready.
func (s *Schedule) MakespanWith(dur []float64) float64 {
	n := s.w.N()
	start := make([]float64, n)
	finish := make([]float64, n)
	return s.forward(dur, start, finish)
}

// MakespanInto is MakespanWith with caller-provided scratch buffers (each of
// length N), for allocation-free Monte-Carlo loops.
func (s *Schedule) MakespanInto(dur, startBuf, finishBuf []float64) float64 {
	return s.forward(dur, startBuf, finishBuf)
}

// SlackWith computes each task's slack and the makespan of the schedule
// under an arbitrary duration vector (Definition 3.3 evaluated on a
// realization instead of the expectations). Robustness measures that ask
// which tasks *became* critical in a realization build on this.
func (s *Schedule) SlackWith(dur []float64) (slack []float64, makespan float64) {
	n := s.w.N()
	start := make([]float64, n)
	finish := make([]float64, n)
	makespan = s.forward(dur, start, finish)
	bl := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := s.topo[i]
		best := 0.0
		for _, a := range s.succ[v] {
			if c := a.comm + bl[a.to]; c > best {
				best = c
			}
		}
		bl[v] = dur[v] + best
	}
	slack = make([]float64, n)
	for v := 0; v < n; v++ {
		sl := makespan - bl[v] - start[v]
		if sl < 0 && sl > -1e-9 {
			sl = 0
		}
		slack[v] = sl
	}
	return slack, makespan
}

// Workload returns the workload the schedule was built for.
func (s *Schedule) Workload() *platform.Workload { return s.w }

// Proc returns the processor assigned to task v.
func (s *Schedule) Proc(v int) int { return s.proc[v] }

// ProcAssignment returns a copy of the task→processor map.
func (s *Schedule) ProcAssignment() []int { return append([]int(nil), s.proc...) }

// ProcOrder returns a copy of the ordered task list of processor p.
func (s *Schedule) ProcOrder(p int) []int { return append([]int(nil), s.procOrder[p]...) }

// Order returns the global execution order (the topological order of G_s
// used by the analysis).
func (s *Schedule) Order() []int { return append([]int(nil), s.topo...) }

// Makespan returns the expected makespan M0(s).
func (s *Schedule) Makespan() float64 { return s.makespan }

// Start returns the ASAP start time of task v under expected durations;
// this equals the task's top level Tl(v).
func (s *Schedule) Start(v int) float64 { return s.start[v] }

// Finish returns the finish time of task v under expected durations.
func (s *Schedule) Finish(v int) float64 { return s.finish[v] }

// TopLevel returns Tl(v), the length of the longest path from an entry node
// to v (excluding v) in G_s under expected durations.
func (s *Schedule) TopLevel(v int) float64 { return s.start[v] }

// BottomLevel returns Bl(v), the length of the longest path from v to an
// exit node (including v) in G_s under expected durations.
func (s *Schedule) BottomLevel(v int) float64 { return s.bl[v] }

// Slack returns σ_v = M - Bl(v) - Tl(v) (Definition 3.3): the window by
// which v's duration may grow without extending the makespan, all other
// durations at their expected values (Theorem 3.4).
func (s *Schedule) Slack(v int) float64 { return s.slack[v] }

// AvgSlack returns the average slack over all tasks (Eqn. 3), the paper's
// robustness surrogate.
func (s *Schedule) AvgSlack() float64 { return s.avgSlack }

// MinSlack returns the smallest task slack; an alternative, more
// conservative robustness surrogate exposed as a fitness option.
func (s *Schedule) MinSlack() float64 { return s.minSlack }

// ExpectedDurations returns a copy of the expected duration of each task on
// its assigned processor.
func (s *Schedule) ExpectedDurations() []float64 { return append([]float64(nil), s.expDur...) }

// DisjunctiveEdges returns the extra (E') edges of G_s, i.e. the
// same-processor ordering arcs that are not data edges.
func (s *Schedule) DisjunctiveEdges() []dag.Edge {
	var out []dag.Edge
	g := s.w.G
	for _, list := range s.procOrder {
		for i := 1; i < len(list); i++ {
			u, v := list[i-1], list[i]
			if !g.HasEdge(u, v) {
				out = append(out, dag.Edge{From: u, To: v, Data: 0})
			}
		}
	}
	return out
}

// DisjunctiveGraph materializes G_s as a dag.Graph (Definition 3.1), with
// the data sizes of same-processor edges zeroed per Eqn. 1.
func (s *Schedule) DisjunctiveGraph() (*dag.Graph, error) {
	b := dag.NewBuilder(s.w.N())
	for _, e := range s.w.G.Edges() {
		data := e.Data
		if s.proc[e.From] == s.proc[e.To] {
			data = 0
		}
		if err := b.AddEdge(e.From, e.To, data); err != nil {
			return nil, err
		}
	}
	for _, e := range s.DisjunctiveEdges() {
		if err := b.AddEdge(e.From, e.To, 0); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// CriticalTasks returns the tasks with (numerically) zero slack, i.e. the
// tasks on some critical path of G_s.
func (s *Schedule) CriticalTasks() []int {
	var out []int
	for v, sl := range s.slack {
		if sl <= 1e-9 {
			out = append(out, v)
		}
	}
	return out
}

// String renotes the schedule in the paper's notation
// {{(v1,v2),(v2,v4)}, {(v3,v5)}, ∅}, with 1-based task names.
func (s *Schedule) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for p, list := range s.procOrder {
		if p > 0 {
			b.WriteString(", ")
		}
		switch {
		case len(list) == 0:
			b.WriteString("∅")
		case len(list) == 1:
			fmt.Fprintf(&b, "{v%d}", list[0]+1)
		default:
			b.WriteByte('{')
			for i := 1; i < len(list); i++ {
				if i > 1 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(v%d,v%d)", list[i-1]+1, list[i]+1)
			}
			b.WriteByte('}')
		}
	}
	b.WriteByte('}')
	return b.String()
}
