// Package schedule implements schedules and their semantics from Section 3
// of the paper: the per-processor task orders, the disjunctive graph G_s
// (Definition 3.1), the makespan of any duration realization as the critical
// path of G_s (Claim 3.2), and per-task / average slack (Definition 3.3).
//
// A Schedule is immutable once built. Construction precomputes one
// topological order of the disjunctive graph together with the communication
// cost of every arc, so that each Monte-Carlo realization costs a single
// O(V+E) longest-path pass with no allocation — the property that makes the
// paper's 100 graphs × 1000 realizations evaluation tractable.
//
// The disjunctive graph is stored in CSR (compressed sparse row) form,
// split into a static and a dynamic half: the data arcs (targets, offsets,
// data sizes) are built once per task graph and shared by every schedule of
// it (arcs.go), while each schedule carries only what the chromosome
// determines — per-arc communication costs, the at-most-one disjunctive arc
// per task, and the analysis vectors. All per-schedule integer state lives
// in one int32 arena and all float state in one float64 arena, so building
// a schedule costs exactly two heap allocations beyond its struct and the
// longest-path passes walk contiguous memory. See Decoder (decoder.go) for
// the pooled fast path used by the GA's chromosome decoding and for
// DecodeDelta, the incremental path that reuses a parent schedule's prefix.
package schedule

import (
	"fmt"
	"strings"

	"robsched/internal/dag"
	"robsched/internal/platform"
)

// Schedule is an immutable assignment of tasks to processors plus an
// execution order on each processor, together with the analysis of the
// schedule under expected task durations.
//
// Layout: proc, topo, porder/porderOff and dsucc/dpred are carved from a
// single int32 arena; the comm costs and the analysis vectors from a single
// float64 arena. The data-arc adjacency itself (targets, offsets, data
// sizes) is shared across all schedules of the same task graph via arcs.
type Schedule struct {
	w    *platform.Workload
	arcs *arcSet // shared static CSR of the task graph's data arcs

	proc      []int32 // task -> processor
	topo      []int32 // topological order of the disjunctive graph
	porder    []int32 // tasks grouped by processor, in execution order
	porderOff []int32 // m+1 offsets into porder

	// The at-most-one disjunctive (same-processor ordering) arc of each
	// task: dsucc[v]/dpred[v] is the next/previous task on v's processor
	// when that pair is not already a data edge, else -1. Disjunctive arcs
	// carry zero cost (Eqn. 1) and are evaluated after each task's data
	// arcs, matching the legacy CSR where they sat last in the row.
	dsucc []int32
	dpred []int32

	// Communication cost of each data arc, parallel to arcs.succTo and
	// arcs.predTo; depends on the processor assignment.
	succComm []float64
	predComm []float64

	// Analysis under expected durations.
	expDur   []float64 // expected duration of each task on its processor
	start    []float64 // earliest (ASAP) start times; equals top level
	finish   []float64
	makespan float64   // M0(s)
	bl       []float64 // bottom levels (including own duration)
	slack    []float64 // σ_i = M - Bl(i) - Tl(i)
	avgSlack float64
	minSlack float64
}

// New builds and validates a schedule from a task→processor map and
// per-processor orders. It returns an error if the assignment is not a
// partition of the tasks consistent with proc, or if the processor orders
// conflict with the task graph's precedence constraints (i.e. the
// disjunctive graph would be cyclic).
func New(w *platform.Workload, proc []int, procOrder [][]int) (*Schedule, error) {
	n, m := w.N(), w.M()
	if len(proc) != n {
		return nil, fmt.Errorf("schedule: proc has %d entries, want %d", len(proc), n)
	}
	if len(procOrder) != m {
		return nil, fmt.Errorf("schedule: procOrder has %d lists, want %d", len(procOrder), m)
	}
	seen := make([]bool, n)
	for p, list := range procOrder {
		for _, v := range list {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("schedule: task %d out of range on processor %d", v, p)
			}
			if seen[v] {
				return nil, fmt.Errorf("schedule: task %d appears more than once", v)
			}
			seen[v] = true
			if proc[v] != p {
				return nil, fmt.Errorf("schedule: task %d listed on processor %d but proc maps it to %d", v, p, proc[v])
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("schedule: task %d is not assigned", v)
		}
	}
	for v, p := range proc {
		if p < 0 || p >= m {
			return nil, fmt.Errorf("schedule: task %d assigned to processor %d out of range [0,%d)", v, p, m)
		}
	}
	s := new(Schedule)
	sc := getScratch(n, m)
	defer putScratch(sc)
	sc.prepassFromLists(w, proc, procOrder)
	err := buildInto(s, w, sc, nil)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FromOrder builds a schedule from a global scheduling string (a topological
// order of the task graph) and a task→processor map; each processor executes
// its tasks in their relative order within the scheduling string. This is
// exactly the decoding of the paper's GA chromosome (Section 4.2.1).
func FromOrder(w *platform.Workload, order []int, proc []int) (*Schedule, error) {
	s := new(Schedule)
	if err := decodeOrder(s, w, order, proc); err != nil {
		return nil, err
	}
	return s, nil
}

// FromOrderTrusted is FromOrder for orders the caller already knows to be
// topological, as the GA's operators guarantee by construction (Section
// 4.2.5/4.2.6). Historically it skipped the O(V+E) precedence scan; since
// the scheduling string became the stored topological order, precedence
// validation is a byproduct of the communication-cost fill (one comparison
// per arc, cheaper than the Kahn pass it replaced), so the trusted path now
// rejects every inversion — including cross-processor ones — just like
// FromOrder, at no extra cost.
func FromOrderTrusted(w *platform.Workload, order []int, proc []int) (*Schedule, error) {
	s := new(Schedule)
	if err := decodeOrder(s, w, order, proc); err != nil {
		return nil, err
	}
	return s, nil
}

// forward runs one ASAP longest-path pass over the disjunctive graph with
// the given durations, filling start and finish, and returns the makespan.
// start and finish must have length N.
func (s *Schedule) forward(dur, start, finish []float64) float64 {
	predOff, predTo, predComm := s.arcs.predOff, s.arcs.predTo, s.predComm
	dpred := s.dpred
	makespan := 0.0
	for _, v32 := range s.topo {
		v := int(v32)
		st := 0.0
		for k := predOff[v]; k < predOff[v+1]; k++ {
			if t := finish[predTo[k]] + predComm[k]; t > st {
				st = t
			}
		}
		// The disjunctive predecessor costs zero communication.
		if u := dpred[v]; u >= 0 {
			if t := finish[u]; t > st {
				st = t
			}
		}
		start[v] = st
		f := st + dur[v]
		finish[v] = f
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// backward fills bl with the bottom level of every task under the given
// durations: Bl(v) = dur(v) + max over successors of (comm(v,u) + Bl(u)).
func (s *Schedule) backward(dur, bl []float64) {
	succOff, succTo, succComm := s.arcs.succOff, s.arcs.succTo, s.succComm
	dsucc := s.dsucc
	for i := len(s.topo) - 1; i >= 0; i-- {
		v := int(s.topo[i])
		best := 0.0
		for k := succOff[v]; k < succOff[v+1]; k++ {
			if c := succComm[k] + bl[succTo[k]]; c > best {
				best = c
			}
		}
		if u := dsucc[v]; u >= 0 {
			if c := bl[u]; c > best {
				best = c
			}
		}
		bl[v] = dur[v] + best
	}
}

// MakespanWith returns the makespan of the schedule when task v takes
// dur[v] time units (durations already resolved for the assigned
// processors), per Claim 3.2: every task starts as soon as it is ready.
func (s *Schedule) MakespanWith(dur []float64) float64 {
	n := s.w.N()
	start := make([]float64, n)
	finish := make([]float64, n)
	return s.forward(dur, start, finish)
}

// MakespanInto is MakespanWith with caller-provided scratch buffers (each of
// length N), for allocation-free Monte-Carlo loops.
func (s *Schedule) MakespanInto(dur, startBuf, finishBuf []float64) float64 {
	return s.forward(dur, startBuf, finishBuf)
}

// SlackWith computes each task's slack and the makespan of the schedule
// under an arbitrary duration vector (Definition 3.3 evaluated on a
// realization instead of the expectations). Robustness measures that ask
// which tasks *became* critical in a realization build on this.
func (s *Schedule) SlackWith(dur []float64) (slack []float64, makespan float64) {
	n := s.w.N()
	start := make([]float64, n)
	finish := make([]float64, n)
	makespan = s.forward(dur, start, finish)
	bl := make([]float64, n)
	s.backward(dur, bl)
	slack = make([]float64, n)
	for v := 0; v < n; v++ {
		sl := makespan - bl[v] - start[v]
		if sl < 0 && sl > -1e-9 {
			sl = 0
		}
		slack[v] = sl
	}
	return slack, makespan
}

// Workload returns the workload the schedule was built for.
func (s *Schedule) Workload() *platform.Workload { return s.w }

// Proc returns the processor assigned to task v.
func (s *Schedule) Proc(v int) int { return int(s.proc[v]) }

// ProcAssignment returns a copy of the task→processor map.
func (s *Schedule) ProcAssignment() []int {
	out := make([]int, len(s.proc))
	for v, p := range s.proc {
		out[v] = int(p)
	}
	return out
}

// ProcOrder returns a copy of the ordered task list of processor p.
func (s *Schedule) ProcOrder(p int) []int {
	list := s.porder[s.porderOff[p]:s.porderOff[p+1]]
	out := make([]int, len(list))
	for i, v := range list {
		out[i] = int(v)
	}
	return out
}

// Order returns the global execution order (the topological order of G_s
// used by the analysis).
func (s *Schedule) Order() []int {
	out := make([]int, len(s.topo))
	for i, v := range s.topo {
		out[i] = int(v)
	}
	return out
}

// Makespan returns the expected makespan M0(s).
func (s *Schedule) Makespan() float64 { return s.makespan }

// Start returns the ASAP start time of task v under expected durations;
// this equals the task's top level Tl(v).
func (s *Schedule) Start(v int) float64 { return s.start[v] }

// Finish returns the finish time of task v under expected durations.
func (s *Schedule) Finish(v int) float64 { return s.finish[v] }

// TopLevel returns Tl(v), the length of the longest path from an entry node
// to v (excluding v) in G_s under expected durations.
func (s *Schedule) TopLevel(v int) float64 { return s.start[v] }

// BottomLevel returns Bl(v), the length of the longest path from v to an
// exit node (including v) in G_s under expected durations.
func (s *Schedule) BottomLevel(v int) float64 { return s.bl[v] }

// Slack returns σ_v = M - Bl(v) - Tl(v) (Definition 3.3): the window by
// which v's duration may grow without extending the makespan, all other
// durations at their expected values (Theorem 3.4).
func (s *Schedule) Slack(v int) float64 { return s.slack[v] }

// AvgSlack returns the average slack over all tasks (Eqn. 3), the paper's
// robustness surrogate.
func (s *Schedule) AvgSlack() float64 { return s.avgSlack }

// MinSlack returns the smallest task slack; an alternative, more
// conservative robustness surrogate exposed as a fitness option.
func (s *Schedule) MinSlack() float64 { return s.minSlack }

// ExpectedDurations returns a copy of the expected duration of each task on
// its assigned processor.
func (s *Schedule) ExpectedDurations() []float64 { return append([]float64(nil), s.expDur...) }

// DisjunctiveEdges returns the extra (E') edges of G_s, i.e. the
// same-processor ordering arcs that are not data edges, read from the CSR
// per-processor order.
func (s *Schedule) DisjunctiveEdges() []dag.Edge {
	var out []dag.Edge
	g := s.w.G
	for p := 0; p+1 < len(s.porderOff); p++ {
		list := s.porder[s.porderOff[p]:s.porderOff[p+1]]
		for i := 1; i < len(list); i++ {
			u, v := int(list[i-1]), int(list[i])
			if !g.HasEdge(u, v) {
				out = append(out, dag.Edge{From: u, To: v, Data: 0})
			}
		}
	}
	return out
}

// DisjunctiveGraph materializes G_s as a dag.Graph (Definition 3.1), with
// the data sizes of same-processor edges zeroed per Eqn. 1.
func (s *Schedule) DisjunctiveGraph() (*dag.Graph, error) {
	b := dag.NewBuilder(s.w.N())
	for _, e := range s.w.G.Edges() {
		data := e.Data
		if s.proc[e.From] == s.proc[e.To] {
			data = 0
		}
		if err := b.AddEdge(e.From, e.To, data); err != nil {
			return nil, err
		}
	}
	for _, e := range s.DisjunctiveEdges() {
		if err := b.AddEdge(e.From, e.To, 0); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// CriticalTasks returns the tasks with (numerically) zero slack, i.e. the
// tasks on some critical path of G_s.
func (s *Schedule) CriticalTasks() []int {
	var out []int
	for v, sl := range s.slack {
		if sl <= 1e-9 {
			out = append(out, v)
		}
	}
	return out
}

// String renotes the schedule in the paper's notation
// {{(v1,v2),(v2,v4)}, {(v3,v5)}, ∅}, with 1-based task names.
func (s *Schedule) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for p := 0; p+1 < len(s.porderOff); p++ {
		list := s.porder[s.porderOff[p]:s.porderOff[p+1]]
		if p > 0 {
			b.WriteString(", ")
		}
		switch {
		case len(list) == 0:
			b.WriteString("∅")
		case len(list) == 1:
			fmt.Fprintf(&b, "{v%d}", list[0]+1)
		default:
			b.WriteByte('{')
			for i := 1; i < len(list); i++ {
				if i > 1 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(v%d,v%d)", list[i-1]+1, list[i]+1)
			}
			b.WriteByte('}')
		}
	}
	b.WriteByte('}')
	return b.String()
}
