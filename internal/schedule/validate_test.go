package schedule_test

// External test package: exercising Validate against real heuristics needs
// heft and gen, which import schedule.

import (
	"strings"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

func validateWorkload(t testing.TB, seed uint64, n, m int) *platform.Workload {
	t.Helper()
	p := gen.PaperParams()
	p.N, p.M = n, m
	w, err := gen.Random(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestValidateAcceptsHeuristics runs Validate over schedules from every
// constructor path: HEFT, random schedules and FromOrder decoding.
func TestValidateAcceptsHeuristics(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		w := validateWorkload(t, uint64(trial), 25, 3)
		s, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(s); err != nil {
			t.Errorf("trial %d: HEFT schedule rejected: %v", trial, err)
		}
		rs, err := heft.RandomSchedule(w, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(rs); err != nil {
			t.Errorf("trial %d: random schedule rejected: %v", trial, err)
		}
		ds, err := schedule.FromOrder(w, rs.Order(), rs.ProcAssignment())
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(ds); err != nil {
			t.Errorf("trial %d: FromOrder schedule rejected: %v", trial, err)
		}
	}
}

func TestValidateNil(t *testing.T) {
	if err := schedule.Validate(nil); err == nil {
		t.Error("nil schedule accepted")
	}
}

// TestValidateExecutionAcceptsAnalysis feeds a schedule's own analysis
// vectors through the trace validator: the expected-duration timetable is
// itself a feasible execution.
func TestValidateExecutionAcceptsAnalysis(t *testing.T) {
	w := validateWorkload(t, 7, 20, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := w.N()
	proc := s.ProcAssignment()
	start := make([]float64, n)
	finish := make([]float64, n)
	for v := 0; v < n; v++ {
		start[v], finish[v] = s.Start(v), s.Finish(v)
	}
	if err := schedule.ValidateExecution(w, proc, start, finish); err != nil {
		t.Fatal(err)
	}
}

// TestValidateExecutionRejects tampers with a feasible trace along every
// invariant and checks each corruption is caught with the right message.
func TestValidateExecutionRejects(t *testing.T) {
	w := validateWorkload(t, 8, 20, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := w.N()
	base := func() (proc []int, start, finish []float64) {
		proc = s.ProcAssignment()
		start = make([]float64, n)
		finish = make([]float64, n)
		for v := 0; v < n; v++ {
			start[v], finish[v] = s.Start(v), s.Finish(v)
		}
		return proc, start, finish
	}
	// Find a task with a predecessor for the precedence case.
	dep := -1
	for v := 0; v < n && dep < 0; v++ {
		if len(w.G.Predecessors(v)) > 0 {
			dep = v
		}
	}
	if dep < 0 {
		t.Fatal("workload has no dependent task")
	}

	cases := []struct {
		name    string
		corrupt func(proc []int, start, finish []float64)
		errHas  string
	}{
		{"finish before start", func(_ []int, start, finish []float64) {
			finish[0] = start[0] - 1
		}, "before its start"},
		{"processor out of range", func(proc []int, _, _ []float64) {
			proc[0] = w.M()
		}, "out of range"},
		{"precedence violated", func(_ []int, start, finish []float64) {
			d := finish[dep] - start[dep]
			start[dep] = 0
			finish[dep] = d
		}, "before data from"},
	}
	for _, tc := range cases {
		proc, start, finish := base()
		tc.corrupt(proc, start, finish)
		err := schedule.ValidateExecution(w, proc, start, finish)
		if err == nil {
			t.Errorf("%s: corruption accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.errHas) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errHas)
		}
	}

	// Overlap: move every task of the busiest processor to start at 0.
	// (Corrupting starts also breaks precedence, so build a tiny conflict
	// directly instead: two independent tasks forced onto one processor at
	// the same time.)
	proc, start, finish := base()
	var onP []int
	for v := 0; v < n; v++ {
		if proc[v] == proc[0] {
			onP = append(onP, v)
		}
	}
	if len(onP) >= 2 {
		a, b := onP[0], onP[1]
		start[b], finish[b] = start[a], finish[a]+1
		// Precedence may or may not trip first; overlap must trip if it
		// survives precedence. Either way the trace must be rejected.
		if err := schedule.ValidateExecution(w, proc, start, finish); err == nil {
			t.Error("overlapping trace accepted")
		}
	}

	// Length mismatch.
	if err := schedule.ValidateExecution(w, proc[:n-1], start, finish); err == nil {
		t.Error("short proc vector accepted")
	}
}

// TestValidateExecutionSubset checks the completed-mask semantics: masked
// tasks are ignored, and a completed task with an incomplete predecessor
// is rejected.
func TestValidateExecutionSubset(t *testing.T) {
	w := validateWorkload(t, 9, 20, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := w.N()
	proc := s.ProcAssignment()
	start := make([]float64, n)
	finish := make([]float64, n)
	completed := make([]bool, n)
	for v := 0; v < n; v++ {
		start[v], finish[v] = s.Start(v), s.Finish(v)
		completed[v] = true
	}

	// Garbage on a non-completed task must be invisible.
	var leaf int = -1
	for v := 0; v < n; v++ {
		if len(w.G.Successors(v)) == 0 {
			leaf = v
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no leaf task")
	}
	completed[leaf] = false
	start[leaf], finish[leaf] = -100, -200
	if err := schedule.ValidateExecutionSubset(w, proc, start, finish, completed); err != nil {
		t.Errorf("garbage on dropped leaf rejected: %v", err)
	}

	// A completed task whose predecessor is not completed must be caught.
	dep := -1
	for v := 0; v < n && dep < 0; v++ {
		if len(w.G.Predecessors(v)) > 0 {
			dep = v
		}
	}
	if dep < 0 {
		t.Fatal("no dependent task")
	}
	completed[leaf] = true
	start[leaf], finish[leaf] = s.Start(leaf), s.Finish(leaf)
	completed[w.G.Predecessors(dep)[0].To] = false
	err = schedule.ValidateExecutionSubset(w, proc, start, finish, completed)
	if err == nil || !strings.Contains(err.Error(), "predecessor") {
		t.Errorf("incomplete predecessor not caught: %v", err)
	}
}
