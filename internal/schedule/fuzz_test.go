package schedule

import (
	"testing"

	"robsched/internal/gen"
	"robsched/internal/rng"
)

// FuzzDecodeDelta hammers the incremental decoder with arbitrary
// workloads, GA-like parent/child derivations and arbitrary — including
// deliberately wrong — dirty-frontier claims. The invariant is total: for
// any claim, DecodeDelta either produces a schedule bit-identical to the
// full decode of the same chromosome, or reports full=true and produces
// the full decode's result; it must never panic and never return a
// schedule that disagrees with DecodeInto.
func FuzzDecodeDelta(f *testing.F) {
	f.Add(uint64(1), uint64(2), 3, 0)
	f.Add(uint64(7), uint64(11), 1, 5)
	f.Add(uint64(42), uint64(13), 1000, 1)
	f.Add(uint64(99), uint64(3), -4, 2)
	f.Fuzz(func(t *testing.T, wseed, dseed uint64, claim, edits int) {
		p := gen.PaperParams()
		p.N = 2 + int(wseed%40)
		p.M = 1 + int(wseed%6)
		w, err := gen.Random(p, rng.New(wseed))
		if err != nil {
			return
		}
		n := w.N()
		r := rng.New(dseed)
		pOrder := w.G.RandomTopologicalOrder(r)
		pProc := make([]int, n)
		for i := range pProc {
			pProc[i] = r.Intn(w.M())
		}
		dec := NewDecoder(w)
		var parent Schedule
		if err := dec.DecodeInto(&parent, pOrder, pProc); err != nil {
			t.Fatalf("parent decode failed: %v", err)
		}
		// Chain up to three GA-like derivations so children can be several
		// operator applications away from the decoded parent, like the
		// evaluator's composed parent chains.
		order, proc := pOrder, pProc
		for e := 0; e < edits%4; e++ {
			order, proc, _ = deriveChild(r, w, order, proc)
		}
		var want Schedule
		if err := dec.DecodeInto(&want, order, proc); err != nil {
			t.Fatalf("full decode of derived child failed: %v", err)
		}
		// The exact divergence against the *original* parent, for the
		// overclaim assertion below.
		trueD := n
		for i := 0; i < n; i++ {
			if order[i] != pOrder[i] || proc[order[i]] != pProc[order[i]] {
				trueD = i
				break
			}
		}
		var got Schedule
		frontier, full, err := dec.DecodeDelta(&parent, &got, order, proc, claim)
		if err != nil {
			t.Fatalf("DecodeDelta(claim=%d) rejected a valid child: %v", claim, err)
		}
		if !full && claim > trueD && trueD < n {
			t.Fatalf("claim %d exceeds true divergence %d but the prefix verified", claim, trueD)
		}
		if frontier < 0 || frontier > n {
			t.Fatalf("frontier %d out of range [0,%d]", frontier, n)
		}
		sameSchedule(t, "fuzz", &got, &want)
	})
}
