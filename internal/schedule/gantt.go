package schedule

import (
	"fmt"
	"strings"
)

// Gantt renders a text Gantt chart of the schedule under expected durations,
// one row per processor, scaled to the given width in character cells.
// Tasks are labelled with their 1-based id as in the paper's Fig. 1(c).
func (s *Schedule) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	if s.makespan <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / s.makespan
	var b strings.Builder
	for p := 0; p+1 < len(s.porderOff); p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, v := range s.porder[s.porderOff[p]:s.porderOff[p+1]] {
			lo := int(s.start[v] * scale)
			hi := int(s.finish[v] * scale)
			if hi > width {
				hi = width
			}
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			label := fmt.Sprintf("%d", v+1)
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
			for i, c := range []byte(label) {
				if lo+i < hi && lo+i < width {
					row[lo+i] = c
				}
			}
		}
		fmt.Fprintf(&b, "P%-2d |%s|\n", p+1, string(row))
	}
	fmt.Fprintf(&b, "      0%*s%.4g\n", width-1, "t=", s.makespan)
	return b.String()
}
