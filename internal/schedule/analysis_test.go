package schedule

import (
	"math"
	"testing"

	"robsched/internal/rng"
)

func TestCriticalPathDiamond(t *testing.T) {
	s := diamondSchedule(t)
	cp := s.CriticalPath()
	// The critical path is 0 → 2 → 3 (slacks 0, 0, 0; task 1 has slack 6).
	want := []int{0, 2, 3}
	if len(cp) != len(want) {
		t.Fatalf("CriticalPath = %v, want %v", cp, want)
	}
	for i := range want {
		if cp[i] != want[i] {
			t.Fatalf("CriticalPath = %v, want %v", cp, want)
		}
	}
}

func TestCriticalPathProperties(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 30; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(40), 1+r.Intn(4))
		s := randomSchedule(t, r, w)
		cp := s.CriticalPath()
		if len(cp) == 0 {
			t.Fatal("empty critical path")
		}
		// Every task on the path has zero slack.
		for _, v := range cp {
			if s.Slack(v) > 1e-9 {
				t.Fatalf("critical-path task %d has slack %g", v, s.Slack(v))
			}
		}
		// Consecutive path tasks are tight: finish(u)+comm == start(v).
		// (We can't see the comm directly here, but start ordering must be
		// strictly increasing and the path must end at the makespan.)
		for i := 1; i < len(cp); i++ {
			if s.Start(cp[i]) < s.Start(cp[i-1]) {
				t.Fatalf("path starts not monotone: %v", cp)
			}
		}
		last := cp[len(cp)-1]
		if math.Abs(s.Finish(last)-s.Makespan()) > 1e-9 {
			t.Fatalf("path ends at %g, makespan %g", s.Finish(last), s.Makespan())
		}
		// Path durations + gaps sum to the makespan; in particular the
		// path's first task starts at 0 only if it's an entry — always
		// true by construction since we follow preds until none binds.
		if s.Start(cp[0]) > 1e-9 && len(s.Order()) > 0 {
			// A critical path must start at time 0: the first task's start
			// is bounded by its (absent) binding predecessors.
			t.Fatalf("critical path starts at %g, want 0", s.Start(cp[0]))
		}
	}
}

func TestProcessorUtilizationDiamond(t *testing.T) {
	s := diamondSchedule(t)
	u := s.ProcessorUtilization()
	// P0 runs tasks 0, 1, 3 (2+3+1 = 6 of 12); P1 runs task 2, whose
	// duration on P1 is 2 (of 12).
	if math.Abs(u[0]-0.5) > 1e-12 || math.Abs(u[1]-2.0/12) > 1e-12 {
		t.Fatalf("utilization = %v, want [0.5, 0.167]", u)
	}
}

func TestTotalIdleTimeDiamond(t *testing.T) {
	s := diamondSchedule(t)
	// 2 procs × makespan 12 − total work 8 = 16.
	if got := s.TotalIdleTime(); math.Abs(got-16) > 1e-12 {
		t.Fatalf("TotalIdleTime = %g, want 16", got)
	}
}

func TestLoadImbalanceDiamond(t *testing.T) {
	s := diamondSchedule(t)
	// busy: P0=6, P1=2 → (6−2)/12.
	if got := s.LoadImbalance(); math.Abs(got-4.0/12) > 1e-12 {
		t.Fatalf("LoadImbalance = %g, want %g", got, 4.0/12)
	}
}

func TestUtilizationBounds(t *testing.T) {
	r := rng.New(103)
	for trial := 0; trial < 20; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(30), 1+r.Intn(4))
		s := randomSchedule(t, r, w)
		for p, u := range s.ProcessorUtilization() {
			if u < 0 || u > 1+1e-9 {
				t.Fatalf("utilization[%d] = %g out of [0,1]", p, u)
			}
		}
		if s.TotalIdleTime() < -1e-9 {
			t.Fatal("negative idle time")
		}
		if im := s.LoadImbalance(); im < 0 || im > 1+1e-9 {
			t.Fatalf("imbalance %g out of [0,1]", im)
		}
	}
}
