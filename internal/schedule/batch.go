package schedule

// MakespanBatchInto computes the realized makespans of `lanes` duration
// realizations in a single structure-of-arrays forward longest-path sweep
// over the schedule's CSR disjunctive graph. The graph topology (topological
// order, arc targets, communication costs) is loaded once per batch and each
// arc updates all lanes, instead of re-walking the graph once per
// realization as MakespanInto does — the batching that makes the paper's
// 1000-realization evaluations cheap.
//
// dur and finishBuf are lane-major with stride `lanes`: index [v*lanes+l]
// holds task v's value in lane l, so the per-arc inner loop walks contiguous
// memory. dur and finishBuf must have length >= N*lanes, stBuf (the current
// node's start-time scratch) length >= lanes, and out (which receives the
// makespans) length >= lanes.
//
// Every lane's floating-point operations are performed in exactly the order
// of the scalar forward pass, so out[l] is bit-identical to
// MakespanInto(dur-of-lane-l, ...) for any lane count.
func (s *Schedule) MakespanBatchInto(lanes int, dur, stBuf, finishBuf, out []float64) {
	L := lanes
	n := len(s.proc)
	dur = dur[: n*L : n*L]
	finish := finishBuf[: n*L : n*L]
	if L == batchLanes {
		s.makespanBatch8(n, dur, finish, out)
		return
	}
	st := stBuf[:L:L]
	out = out[:L:L]
	for l := range out {
		out[l] = 0
	}
	predOff, predTo, predComm := s.arcs.predOff, s.arcs.predTo, s.predComm
	dpred := s.dpred
	for _, v32 := range s.topo {
		v := int(v32)
		for l := range st {
			st[l] = 0
		}
		for k := predOff[v]; k < predOff[v+1]; k++ {
			fin := finish[int(predTo[k])*L:]
			fin = fin[:L:L]
			c := predComm[k]
			for l, f := range fin {
				if t := f + c; t > st[l] {
					st[l] = t
				}
			}
		}
		// The disjunctive predecessor costs zero communication.
		if u := dpred[v]; u >= 0 {
			fin := finish[int(u)*L:]
			fin = fin[:L:L]
			for l, f := range fin {
				if f > st[l] {
					st[l] = f
				}
			}
		}
		dv := dur[v*L : v*L+L]
		fv := finish[v*L : v*L+L]
		for l, d := range dv {
			f := st[l] + d
			fv[l] = f
			if f > out[l] {
				out[l] = f
			}
		}
	}
}

// batchLanes is the lane width the specialized sweep below is compiled for;
// sim.DefaultBatchSize matches it so the common path takes the fast kernel.
const batchLanes = 8

// makespanBatch8 is MakespanBatchInto specialized to the default lane width.
// Converting the per-node slices to fixed-size array pointers lets the
// compiler drop the per-element bounds checks in the arc inner loop, which
// dominate the generic sweep's cost at small lane counts. The per-lane
// floating-point operations and their order are exactly those of the generic
// path, so results remain bit-identical.
func (s *Schedule) makespanBatch8(n int, dur, finish, out []float64) {
	const L = batchLanes
	o := (*[L]float64)(out)
	*o = [L]float64{}
	predOff, predTo, predComm := s.arcs.predOff, s.arcs.predTo, s.predComm
	dpred := s.dpred
	for _, v32 := range s.topo {
		v := int(v32)
		// The eight lane start times are held in named locals so they stay
		// in floating-point registers across the arc loop instead of being
		// re-loaded from a stack array on every max update.
		var st0, st1, st2, st3, st4, st5, st6, st7 float64
		for k := predOff[v]; k < predOff[v+1]; k++ {
			fin := (*[L]float64)(finish[int(predTo[k])*L:])
			c := predComm[k]
			if t := fin[0] + c; t > st0 {
				st0 = t
			}
			if t := fin[1] + c; t > st1 {
				st1 = t
			}
			if t := fin[2] + c; t > st2 {
				st2 = t
			}
			if t := fin[3] + c; t > st3 {
				st3 = t
			}
			if t := fin[4] + c; t > st4 {
				st4 = t
			}
			if t := fin[5] + c; t > st5 {
				st5 = t
			}
			if t := fin[6] + c; t > st6 {
				st6 = t
			}
			if t := fin[7] + c; t > st7 {
				st7 = t
			}
		}
		// The disjunctive predecessor costs zero communication.
		if u := dpred[v]; u >= 0 {
			fin := (*[L]float64)(finish[int(u)*L:])
			if fin[0] > st0 {
				st0 = fin[0]
			}
			if fin[1] > st1 {
				st1 = fin[1]
			}
			if fin[2] > st2 {
				st2 = fin[2]
			}
			if fin[3] > st3 {
				st3 = fin[3]
			}
			if fin[4] > st4 {
				st4 = fin[4]
			}
			if fin[5] > st5 {
				st5 = fin[5]
			}
			if fin[6] > st6 {
				st6 = fin[6]
			}
			if fin[7] > st7 {
				st7 = fin[7]
			}
		}
		dv := (*[L]float64)(dur[v*L:])
		fv := (*[L]float64)(finish[v*L:])
		fv[0] = st0 + dv[0]
		fv[1] = st1 + dv[1]
		fv[2] = st2 + dv[2]
		fv[3] = st3 + dv[3]
		fv[4] = st4 + dv[4]
		fv[5] = st5 + dv[5]
		fv[6] = st6 + dv[6]
		fv[7] = st7 + dv[7]
		for l := 0; l < L; l++ {
			if f := fv[l]; f > o[l] {
				o[l] = f
			}
		}
	}
}
