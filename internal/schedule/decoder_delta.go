package schedule

import "fmt"

// DecodeDelta builds the schedule of a trusted (order, proc) chromosome
// into s by reusing a previously decoded parent: every position of the
// scheduling string before firstDirty must match the parent's scheduling
// string, and every task named there must keep its parent processor. The
// parent's start/finish times, bottom levels, per-arc communication costs
// and disjunctive arcs are inherited wholesale, and only tasks at or after
// the dirty frontier whose longest-path inputs actually changed — bitwise —
// are recomputed, propagating through successors and exiting early once the
// frontier drains. The result is bit-identical to a full DecodeInto of the
// same chromosome.
//
// frontier is the number of tasks whose start/finish were recomputed. full
// reports that the call fell back to a full decode (nil or foreign parent,
// no usable prefix, or a prefix that fails verification — the latter means
// the caller's parentage bookkeeping is wrong, and costs only the O(V)
// verification before the regular path runs). s must not alias parent. Like
// DecodeInto, on error the target is left in an unspecified state.
func (d *Decoder) DecodeDelta(parent *Schedule, s *Schedule, order, proc []int, firstDirty int) (frontier int, full bool, err error) {
	w := d.w
	n, m := w.N(), w.M()
	if parent == nil || parent.w != w || firstDirty <= 0 || len(order) != n || len(proc) != n {
		return 0, true, d.DecodeInto(s, order, proc)
	}
	if firstDirty > n {
		firstDirty = n
	}
	for i := 0; i < firstDirty; i++ {
		v := int(parent.topo[i])
		if order[i] != v || proc[v] != int(parent.proc[v]) {
			return 0, true, d.DecodeInto(s, order, proc)
		}
	}

	g, sys := w.G, w.Sys
	arcs := d.arcs
	nE := len(arcs.succTo)
	sc := getScratch(n, m)
	defer putScratch(sc)

	// Validation: permutation, processor range, and the topological-order
	// check for arcs leaving suffix tasks. Arcs inside the prefix were
	// validated when the parent was built, arcs from the prefix into the
	// suffix cannot be inverted, and an arc from the suffix into the prefix
	// always fails the position check below.
	pos := sc.pos[:n]
	for v := range pos {
		pos[v] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n || pos[v] != -1 {
			return 0, false, fmt.Errorf("schedule: scheduling string is not a permutation of the tasks")
		}
		pos[v] = int32(i)
	}
	for v, p := range proc {
		if p < 0 || p >= m {
			return 0, false, fmt.Errorf("schedule: task %d assigned to processor %d out of range [0,%d)", v, p, m)
		}
	}
	succOff, succTo, succData := arcs.succOff, arcs.succTo, arcs.succData
	predOff, predTo := arcs.predOff, arcs.predTo
	for i := firstDirty; i < n; i++ {
		u := order[i]
		up := pos[u]
		for k := succOff[u]; k < succOff[u+1]; k++ {
			if pos[succTo[k]] < up {
				return 0, false, fmt.Errorf("schedule: scheduling string is not a topological order of the task graph")
			}
		}
	}

	// Fresh arenas, filled from the parent; installed into s only at the
	// end so a failed build never leaves s half-overwritten.
	ints := make([]int32, 5*n+m+1)
	var sproc, topo, porder, porderOff, dsucc, dpred []int32
	sproc, ints = carveI(ints, n)
	topo, ints = carveI(ints, n)
	porder, ints = carveI(ints, n)
	porderOff, ints = carveI(ints, m+1)
	dsucc, ints = carveI(ints, n)
	dpred, _ = carveI(ints, n)
	floats := make([]float64, 5*n+2*nE)
	var succComm, predComm, expDur, start, finish, bl, slack []float64
	succComm, floats = carveF(floats, nE)
	predComm, floats = carveF(floats, nE)
	expDur, floats = carveF(floats, n)
	start, floats = carveF(floats, n)
	finish, floats = carveF(floats, n)
	bl, floats = carveF(floats, n)
	slack, _ = carveF(floats, n)

	for v, p := range proc {
		sproc[v] = int32(p)
	}
	for i, v := range order {
		topo[i] = int32(v)
	}
	copy(dsucc, parent.dsucc)
	copy(dpred, parent.dpred)
	copy(succComm, parent.succComm)
	copy(predComm, parent.predComm)
	copy(expDur, parent.expDur)
	copy(start, parent.start)
	copy(finish, parent.finish)
	copy(bl, parent.bl)

	sdirty := sc.sdirty[:n]
	bdirty := sc.bdirty[:n]
	changed := sc.changed[:n]
	for v := 0; v < n; v++ {
		sdirty[v] = false
		bdirty[v] = false
		changed[v] = false
	}
	spending, bpending := 0, 0 // dirty tasks not yet re-swept, per direction

	// Per-processor grouping, rebuilt in scheduling-string order; suffix
	// appends rewire the disjunctive arcs, marking tasks dirty when the arc
	// identity diverges from the inherited parent value.
	pcount := sc.poff[:m+1]
	for p := range pcount {
		pcount[p] = 0
	}
	for _, p := range proc {
		pcount[p+1]++
	}
	for p := 1; p <= m; p++ {
		pcount[p] += pcount[p-1]
	}
	copy(porderOff, pcount)
	pcur := sc.pcur[:m]
	plast := sc.plast[:m]
	for p := 0; p < m; p++ {
		pcur[p] = pcount[p]
		plast[p] = -1
	}
	for i, v := range order {
		p := proc[v]
		porder[pcur[p]] = int32(v)
		pcur[p]++
		u := plast[p]
		plast[p] = int32(v)
		if i < firstDirty {
			continue // disjunctive arcs inside the prefix are inherited
		}
		ndp := int32(-1)
		if u >= 0 && !g.HasEdge(int(u), v) {
			ndp = u
		}
		if dpred[v] != ndp {
			dpred[v] = ndp
			if !sdirty[v] {
				sdirty[v] = true
				spending++
			}
		}
		if u >= 0 {
			nds := int32(v)
			if ndp < 0 {
				nds = -1 // the pair is a data edge; ordering rides on it
			}
			if dsucc[u] != nds {
				dsucc[u] = nds
				if !bdirty[u] {
					bdirty[u] = true
					bpending++
				}
			}
		}
	}
	// Tasks that are now last on their processor keep no disjunctive
	// successor; stale inherited arcs would otherwise point into the past.
	for p := 0; p < m; p++ {
		if t := plast[p]; t >= 0 && dsucc[t] != -1 {
			dsucc[t] = -1
			if !bdirty[t] {
				bdirty[t] = true
				bpending++
			}
		}
	}

	// Reassigned tasks: new expected durations, then re-costed incident
	// arcs (both directions, deduplicated when both endpoints moved). The
	// prefix check above guarantees reassignments live in the suffix.
	for i := firstDirty; i < n; i++ {
		v := order[i]
		if sproc[v] == parent.proc[v] {
			continue
		}
		changed[v] = true
		if nd := w.ExpectedAt(v, proc[v]); nd != expDur[v] {
			expDur[v] = nd
			if !sdirty[v] {
				sdirty[v] = true
				spending++
			}
			if !bdirty[v] {
				bdirty[v] = true
				bpending++
			}
		}
	}
	sMirror, pMirror := arcs.sMirror, arcs.pMirror
	for i := firstDirty; i < n; i++ {
		v := order[i]
		if !changed[v] {
			continue
		}
		pv := proc[v]
		for k := succOff[v]; k < succOff[v+1]; k++ {
			to := int(succTo[k])
			if c := sys.CommCost(pv, proc[to], succData[k]); c != succComm[k] {
				succComm[k] = c
				predComm[sMirror[k]] = c
				if !sdirty[to] {
					sdirty[to] = true
					spending++
				}
				if !bdirty[v] {
					bdirty[v] = true
					bpending++
				}
			}
		}
		for j := predOff[v]; j < predOff[v+1]; j++ {
			u := int(predTo[j])
			if changed[u] {
				continue // u's successor sweep re-costs this arc
			}
			if c := sys.CommCost(proc[u], pv, succData[pMirror[j]]); c != predComm[j] {
				predComm[j] = c
				succComm[pMirror[j]] = c
				if !sdirty[v] {
					sdirty[v] = true
					spending++
				}
				if !bdirty[u] {
					bdirty[u] = true
					bpending++
				}
			}
		}
	}

	// Forward dirty sweep: recompute start/finish of marked tasks in
	// scheduling-string order, propagating only on a bitwise finish change
	// and stopping as soon as the frontier drains. All marks live in the
	// suffix (their causes do), so the sweep starts at the frontier.
	for i := firstDirty; i < n && spending > 0; i++ {
		v := order[i]
		if !sdirty[v] {
			continue
		}
		sdirty[v] = false
		spending--
		frontier++
		st := 0.0
		for k := predOff[v]; k < predOff[v+1]; k++ {
			if t := finish[predTo[k]] + predComm[k]; t > st {
				st = t
			}
		}
		if u := dpred[v]; u >= 0 {
			if t := finish[u]; t > st {
				st = t
			}
		}
		start[v] = st
		f := st + expDur[v]
		if f == finish[v] {
			continue
		}
		finish[v] = f
		for k := succOff[v]; k < succOff[v+1]; k++ {
			if to := succTo[k]; !sdirty[to] {
				sdirty[to] = true
				spending++
			}
		}
		if u := dsucc[v]; u >= 0 && !sdirty[u] {
			sdirty[u] = true
			spending++
		}
	}
	makespan := 0.0
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}

	// Backward dirty sweep: bottom levels depend on successor bottom
	// levels, durations and arc costs — not on start times — so its seeds
	// were planted above and propagation can reach into the prefix.
	for i := n - 1; i >= 0 && bpending > 0; i-- {
		v := order[i]
		if !bdirty[v] {
			continue
		}
		bdirty[v] = false
		bpending--
		best := 0.0
		for k := succOff[v]; k < succOff[v+1]; k++ {
			if c := succComm[k] + bl[succTo[k]]; c > best {
				best = c
			}
		}
		if u := dsucc[v]; u >= 0 {
			if c := bl[u]; c > best {
				best = c
			}
		}
		nb := expDur[v] + best
		if nb == bl[v] {
			continue
		}
		bl[v] = nb
		for k := predOff[v]; k < predOff[v+1]; k++ {
			if u := predTo[k]; !bdirty[u] {
				bdirty[u] = true
				bpending++
			}
		}
		if u := dpred[v]; u >= 0 && !bdirty[u] {
			bdirty[u] = true
			bpending++
		}
	}

	// Slack is cheap and global (it needs the makespan anyway); identical
	// float operations to the full build keep it bit-identical.
	sum := 0.0
	minSlack := 0.0
	for v := 0; v < n; v++ {
		sl := makespan - bl[v] - start[v]
		if sl < 0 && sl > -1e-9 {
			sl = 0
		}
		slack[v] = sl
		sum += sl
		if v == 0 || sl < minSlack {
			minSlack = sl
		}
	}

	s.w = w
	s.arcs = arcs
	s.proc = sproc
	s.topo = topo
	s.porder = porder
	s.porderOff = porderOff
	s.dsucc = dsucc
	s.dpred = dpred
	s.succComm = succComm
	s.predComm = predComm
	s.expDur = expDur
	s.start = start
	s.finish = finish
	s.bl = bl
	s.slack = slack
	s.makespan = makespan
	s.avgSlack = sum / float64(n)
	s.minSlack = minSlack
	return frontier, false, nil
}
