package schedule

import (
	"math"
	"strings"
	"testing"

	"robsched/internal/dag"
	"robsched/internal/platform"
	"robsched/internal/rng"
)

// diamondWorkload is a hand-checkable fixture: the 4-node diamond on two
// processors with unit transfer rate and deterministic durations.
//
//	edges: 0->1 (d=2), 0->2 (d=4), 1->3 (d=1), 2->3 (d=3)
//	exec:  task0 {2,3}, task1 {3,2}, task2 {4,2}, task3 {1,2}
func diamondWorkload(t *testing.T) *platform.Workload {
	t.Helper()
	b := dag.NewBuilder(4)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(0, 2, 4)
	b.MustAddEdge(1, 3, 1)
	b.MustAddEdge(2, 3, 3)
	g := b.MustBuild()
	exec, err := platform.MatrixFromRows([][]float64{{2, 3}, {3, 2}, {4, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(2, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// diamondSchedule assigns tasks {0,1,3} to P0 and {2} to P1.
// Hand computation: start = [0,2,6,11], finish = [2,5,8,12], M0 = 12,
// slack = [0,6,0,0].
func diamondSchedule(t *testing.T) *Schedule {
	t.Helper()
	w := diamondWorkload(t)
	s, err := New(w, []int{0, 0, 1, 0}, [][]int{{0, 1, 3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiamondAnalysis(t *testing.T) {
	s := diamondSchedule(t)
	wantStart := []float64{0, 2, 6, 11}
	wantFinish := []float64{2, 5, 8, 12}
	wantSlack := []float64{0, 6, 0, 0}
	for v := 0; v < 4; v++ {
		if got := s.Start(v); got != wantStart[v] {
			t.Errorf("Start(%d) = %g, want %g", v, got, wantStart[v])
		}
		if got := s.Finish(v); got != wantFinish[v] {
			t.Errorf("Finish(%d) = %g, want %g", v, got, wantFinish[v])
		}
		if got := s.Slack(v); got != wantSlack[v] {
			t.Errorf("Slack(%d) = %g, want %g", v, got, wantSlack[v])
		}
		if got := s.TopLevel(v); got != wantStart[v] {
			t.Errorf("TopLevel(%d) = %g, want %g", v, got, wantStart[v])
		}
	}
	if s.Makespan() != 12 {
		t.Errorf("Makespan = %g, want 12", s.Makespan())
	}
	if got := s.AvgSlack(); got != 1.5 {
		t.Errorf("AvgSlack = %g, want 1.5", got)
	}
	if got := s.MinSlack(); got != 0 {
		t.Errorf("MinSlack = %g, want 0", got)
	}
	if got := s.BottomLevel(0); got != 12 {
		t.Errorf("BottomLevel(0) = %g, want 12", got)
	}
	if got := s.BottomLevel(1); got != 4 {
		t.Errorf("BottomLevel(1) = %g, want 4", got)
	}
}

func TestDiamondCriticalTasks(t *testing.T) {
	s := diamondSchedule(t)
	crit := s.CriticalTasks()
	want := []int{0, 2, 3}
	if len(crit) != len(want) {
		t.Fatalf("CriticalTasks = %v, want %v", crit, want)
	}
	for i := range want {
		if crit[i] != want[i] {
			t.Fatalf("CriticalTasks = %v, want %v", crit, want)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	w := diamondWorkload(t)
	cases := []struct {
		name      string
		proc      []int
		procOrder [][]int
	}{
		{"short proc", []int{0, 0, 1}, [][]int{{0, 1, 3}, {2}}},
		{"wrong list count", []int{0, 0, 1, 0}, [][]int{{0, 1, 3, 2}}},
		{"task out of range", []int{0, 0, 1, 0}, [][]int{{0, 1, 9}, {2}}},
		{"duplicate task", []int{0, 0, 1, 0}, [][]int{{0, 1, 1}, {2}}},
		{"missing task", []int{0, 0, 1, 0}, [][]int{{0, 1}, {2}}},
		{"proc mismatch", []int{0, 0, 0, 0}, [][]int{{0, 1, 3}, {2}}},
		{"proc out of range", []int{0, 0, 5, 0}, [][]int{{0, 1, 3}, {}}},
		{"precedence conflict", []int{0, 0, 1, 0}, [][]int{{0, 3, 1}, {2}}},
		{"reverse order cycle", []int{0, 0, 0, 0}, [][]int{{3, 2, 1, 0}, {}}},
	}
	for _, c := range cases {
		if _, err := New(w, c.proc, c.procOrder); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFromOrder(t *testing.T) {
	w := diamondWorkload(t)
	s, err := FromOrder(w, []int{0, 2, 1, 3}, []int{0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 12 {
		t.Errorf("Makespan = %g, want 12", s.Makespan())
	}
	p0 := s.ProcOrder(0)
	if len(p0) != 3 || p0[0] != 0 || p0[1] != 1 || p0[2] != 3 {
		t.Errorf("ProcOrder(0) = %v", p0)
	}
	if _, err := FromOrder(w, []int{1, 0, 2, 3}, []int{0, 0, 1, 0}); err == nil {
		t.Error("non-topological order accepted")
	}
	if _, err := FromOrder(w, []int{0, 1, 2, 3}, []int{0, 0, 7, 0}); err == nil {
		t.Error("out-of-range processor accepted")
	}
}

func TestSerialScheduleWithDisjunctiveEdge(t *testing.T) {
	w := diamondWorkload(t)
	s, err := New(w, []int{0, 0, 0, 0}, [][]int{{0, 1, 2, 3}, {}})
	if err != nil {
		t.Fatal(err)
	}
	// All on one processor: zero comm, serial execution 2+3+4+1 = 10.
	if s.Makespan() != 10 {
		t.Errorf("Makespan = %g, want 10", s.Makespan())
	}
	dis := s.DisjunctiveEdges()
	if len(dis) != 1 || dis[0].From != 1 || dis[0].To != 2 {
		t.Errorf("DisjunctiveEdges = %v, want [{1 2 0}]", dis)
	}
	// Every task is critical in a serial schedule.
	if got := len(s.CriticalTasks()); got != 4 {
		t.Errorf("CriticalTasks count = %d, want 4", got)
	}
	if s.AvgSlack() != 0 {
		t.Errorf("AvgSlack = %g, want 0", s.AvgSlack())
	}
}

func TestMakespanWith(t *testing.T) {
	s := diamondSchedule(t)
	// Expected durations reproduce M0.
	if got := s.MakespanWith(s.ExpectedDurations()); got != 12 {
		t.Errorf("MakespanWith(expected) = %g, want 12", got)
	}
	// Task 1 has slack 6: delaying it by 6 leaves the makespan at 12.
	dur := s.ExpectedDurations()
	dur[1] += 6
	if got := s.MakespanWith(dur); got != 12 {
		t.Errorf("MakespanWith(+slack) = %g, want 12", got)
	}
	// Delaying by slack+1 extends the makespan by exactly the overshoot.
	dur[1] += 1
	if got := s.MakespanWith(dur); got != 13 {
		t.Errorf("MakespanWith(+slack+1) = %g, want 13", got)
	}
	// Critical task 2 extends the makespan one-for-one.
	dur2 := s.ExpectedDurations()
	dur2[2] += 2.5
	if got := s.MakespanWith(dur2); got != 14.5 {
		t.Errorf("MakespanWith(critical+2.5) = %g, want 14.5", got)
	}
}

func TestMakespanIntoMatchesMakespanWith(t *testing.T) {
	s := diamondSchedule(t)
	r := rng.New(3)
	n := s.Workload().N()
	startBuf := make([]float64, n)
	finishBuf := make([]float64, n)
	for trial := 0; trial < 100; trial++ {
		dur := make([]float64, n)
		for i := range dur {
			dur[i] = r.Uniform(0.5, 10)
		}
		a := s.MakespanWith(dur)
		b := s.MakespanInto(dur, startBuf, finishBuf)
		if a != b {
			t.Fatalf("MakespanWith=%g MakespanInto=%g", a, b)
		}
	}
}

func TestAccessorsReturnCopies(t *testing.T) {
	s := diamondSchedule(t)
	s.ProcAssignment()[0] = 9
	if s.Proc(0) == 9 {
		t.Error("ProcAssignment exposed internals")
	}
	s.ProcOrder(0)[0] = 9
	if s.ProcOrder(0)[0] == 9 {
		t.Error("ProcOrder exposed internals")
	}
	s.Order()[0] = 9
	if s.Order()[0] == 9 {
		t.Error("Order exposed internals")
	}
	s.ExpectedDurations()[0] = 99
	if s.ExpectedDurations()[0] == 99 {
		t.Error("ExpectedDurations exposed internals")
	}
}

func TestDisjunctiveGraph(t *testing.T) {
	s := diamondSchedule(t)
	gs, err := s.DisjunctiveGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Same-processor data edges have their data zeroed (Eqn. 1).
	if d, ok := gs.Data(0, 1); !ok || d != 0 {
		t.Errorf("Data(0,1) = %g,%v, want 0,true", d, ok)
	}
	// Cross-processor data edges keep their size.
	if d, ok := gs.Data(0, 2); !ok || d != 4 {
		t.Errorf("Data(0,2) = %g,%v, want 4,true", d, ok)
	}
	if gs.EdgeCount() != 4 {
		t.Errorf("EdgeCount = %d, want 4", gs.EdgeCount())
	}
}

// TestMakespanEqualsCriticalPathOfGs cross-checks Claim 3.2 against an
// independent longest-path computation over the materialized G_s.
func TestMakespanEqualsCriticalPathOfGs(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(30), 1+r.Intn(4))
		s := randomSchedule(t, r, w)
		gs, err := s.DisjunctiveGraph()
		if err != nil {
			t.Fatal(err)
		}
		dur := s.ExpectedDurations()
		// Independent longest path over gs. Edge cost = data / rate between
		// the assigned processors (0 for same processor; gs already zeroed
		// same-processor data).
		lp := make([]float64, w.N())
		best := 0.0
		for _, v := range gs.TopologicalOrder() {
			st := 0.0
			for _, a := range gs.Predecessors(v) {
				u := a.To
				c := w.Sys.CommCost(s.Proc(u), s.Proc(v), a.Data)
				if x := lp[u] + c; x > st {
					st = x
				}
			}
			lp[v] = st + dur[v]
			if lp[v] > best {
				best = lp[v]
			}
		}
		if math.Abs(best-s.Makespan()) > 1e-9 {
			t.Fatalf("trial %d: critical path %g != makespan %g", trial, best, s.Makespan())
		}
	}
}

// randomWorkload builds a random layered-ish DAG workload for property
// tests (the real generator lives in internal/gen; tests here stay local).
func randomWorkload(t *testing.T, r *rng.Source, n, m int) *platform.Workload {
	t.Helper()
	b := dag.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.25 {
				b.MustAddEdge(u, v, r.Uniform(0, 8))
			}
		}
	}
	g := b.MustBuild()
	bcet := platform.NewMatrix(n, m)
	ul := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			bcet.Set(i, j, r.Uniform(1, 20))
			ul.Set(i, j, r.Uniform(1, 6))
		}
	}
	w, err := platform.NewWorkload(g, platform.UniformSystem(m, 1), bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func randomSchedule(t *testing.T, r *rng.Source, w *platform.Workload) *Schedule {
	t.Helper()
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	s, err := FromOrder(w, order, proc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTheorem34 verifies the slack theorem: delaying a single task by at
// most its slack (others at expected durations) leaves the makespan
// unchanged, and delaying any task with positive slack by more extends it.
func TestTheorem34(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 50; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(40), 1+r.Intn(4))
		s := randomSchedule(t, r, w)
		base := s.ExpectedDurations()
		for v := 0; v < w.N(); v++ {
			sl := s.Slack(v)
			if sl < 0 {
				t.Fatalf("negative slack %g on task %d", sl, v)
			}
			dur := append([]float64(nil), base...)
			dur[v] += sl
			if got := s.MakespanWith(dur); got > s.Makespan()+1e-9 {
				t.Fatalf("delay within slack grew makespan: task %d slack %g, %g > %g",
					v, sl, got, s.Makespan())
			}
			if sl > 1e-9 {
				dur[v] += 0.5 * sl
				if got := s.MakespanWith(dur); got <= s.Makespan()+1e-12 {
					// Exceeding the slack on task v must extend the
					// makespan: slack is tight by construction.
					t.Fatalf("delay beyond slack did not grow makespan: task %d", v)
				}
			}
		}
	}
}

// TestCorollary35 verifies that simultaneously delaying a set of pairwise
// independent tasks (in G_s), each within its own slack, does not increase
// the makespan.
func TestCorollary35(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 50; trial++ {
		w := randomWorkload(t, r, 3+r.Intn(40), 1+r.Intn(4))
		s := randomSchedule(t, r, w)
		gs, err := s.DisjunctiveGraph()
		if err != nil {
			t.Fatal(err)
		}
		closure := gs.TransitiveClosure()
		// Greedily pick a pairwise-independent set among tasks with
		// positive slack.
		var set []int
		for _, v := range r.Perm(w.N()) {
			if s.Slack(v) <= 1e-9 {
				continue
			}
			ok := true
			for _, u := range set {
				if !closure.Independent(u, v) {
					ok = false
					break
				}
			}
			if ok {
				set = append(set, v)
			}
		}
		if len(set) < 2 {
			continue
		}
		dur := s.ExpectedDurations()
		for _, v := range set {
			dur[v] += s.Slack(v) * r.Float64()
		}
		if got := s.MakespanWith(dur); got > s.Makespan()+1e-9 {
			t.Fatalf("independent delays within slack grew makespan: set %v, %g > %g",
				set, got, s.Makespan())
		}
	}
}

// TestTheorem34SlackInvariance checks the second part of Theorem 3.4: after
// delaying task i within its slack, the slack of every task independent of
// i in G_s is unchanged. We rebuild the analysis on a workload whose
// expected duration for i is inflated.
func TestTheorem34SlackInvariance(t *testing.T) {
	r := rng.New(29)
	for trial := 0; trial < 25; trial++ {
		w := randomWorkload(t, r, 3+r.Intn(25), 1+r.Intn(3))
		s := randomSchedule(t, r, w)
		// Pick a task with positive slack.
		cand := -1
		for _, v := range r.Perm(w.N()) {
			if s.Slack(v) > 1e-6 {
				cand = v
				break
			}
		}
		if cand < 0 {
			continue
		}
		delta := s.Slack(cand) * r.Float64()
		p := s.Proc(cand)
		// Inflate the BCET so the expected duration grows by delta on the
		// assigned processor (UL is untouched).
		bcet2 := w.BCET.Clone()
		bcet2.Set(cand, p, bcet2.At(cand, p)+delta/w.UL.At(cand, p))
		w2, err := platform.NewWorkload(w.G, w.Sys, bcet2, w.UL)
		if err != nil {
			t.Fatal(err)
		}
		procOrder := make([][]int, w.M())
		for q := 0; q < w.M(); q++ {
			procOrder[q] = s.ProcOrder(q)
		}
		s2, err := New(w2, s.ProcAssignment(), procOrder)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s2.Makespan()-s.Makespan()) > 1e-6 {
			t.Fatalf("makespan changed: %g -> %g (delta %g <= slack %g)",
				s.Makespan(), s2.Makespan(), delta, s.Slack(cand))
		}
		gs, err := s.DisjunctiveGraph()
		if err != nil {
			t.Fatal(err)
		}
		closure := gs.TransitiveClosure()
		for v := 0; v < w.N(); v++ {
			if v == cand || !closure.Independent(cand, v) {
				continue
			}
			if math.Abs(s2.Slack(v)-s.Slack(v)) > 1e-6 {
				t.Fatalf("slack of independent task %d changed: %g -> %g",
					v, s.Slack(v), s2.Slack(v))
			}
		}
	}
}

// TestMonotoneDurations: growing any subset of durations never shrinks the
// makespan (longest-path monotonicity).
func TestMonotoneDurations(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 50; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(30), 1+r.Intn(4))
		s := randomSchedule(t, r, w)
		dur := s.ExpectedDurations()
		grown := append([]float64(nil), dur...)
		for i := range grown {
			if r.Float64() < 0.5 {
				grown[i] += r.Uniform(0, 5)
			}
		}
		if s.MakespanWith(grown) < s.MakespanWith(dur)-1e-9 {
			t.Fatal("growing durations shrank the makespan")
		}
	}
}

// TestSlackNonNegativeProperty: slack is non-negative on random schedules
// and zero on every exit task that ends the critical path.
func TestSlackNonNegativeProperty(t *testing.T) {
	r := rng.New(37)
	for trial := 0; trial < 60; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(50), 1+r.Intn(5))
		s := randomSchedule(t, r, w)
		minSlack := math.Inf(1)
		for v := 0; v < w.N(); v++ {
			if s.Slack(v) < 0 {
				t.Fatalf("negative slack %g", s.Slack(v))
			}
			if s.Slack(v) < minSlack {
				minSlack = s.Slack(v)
			}
		}
		if minSlack > 1e-9 {
			t.Fatal("no zero-slack task: critical path must have slack 0")
		}
		if s.MinSlack() != minSlack {
			t.Fatalf("MinSlack = %g, want %g", s.MinSlack(), minSlack)
		}
	}
}

func TestStringNotation(t *testing.T) {
	s := diamondSchedule(t)
	got := s.String()
	if !strings.Contains(got, "(v1,v2)") || !strings.Contains(got, "(v2,v4)") {
		t.Errorf("String = %q, want paper notation with (v1,v2), (v2,v4)", got)
	}
	if !strings.Contains(got, "{v3}") {
		t.Errorf("String = %q, want singleton {v3}", got)
	}
	w := diamondWorkload(t)
	s2, err := New(w, []int{0, 0, 0, 0}, [][]int{{0, 1, 2, 3}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s2.String(), "∅") {
		t.Errorf("String = %q, want ∅ for the empty processor", s2.String())
	}
}

func TestGantt(t *testing.T) {
	s := diamondSchedule(t)
	g := s.Gantt(40)
	if !strings.Contains(g, "P1 ") || !strings.Contains(g, "P2 ") {
		t.Errorf("Gantt missing processor rows:\n%s", g)
	}
	if !strings.Contains(g, "1") || !strings.Contains(g, "3") {
		t.Errorf("Gantt missing task labels:\n%s", g)
	}
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("Gantt has %d lines, want 3:\n%s", len(lines), g)
	}
}

func BenchmarkMakespanInto100(b *testing.B) {
	r := rng.New(1)
	w := benchWorkload(b, r, 100, 4)
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	s, err := FromOrder(w, order, proc)
	if err != nil {
		b.Fatal(err)
	}
	dur := s.ExpectedDurations()
	startBuf := make([]float64, w.N())
	finishBuf := make([]float64, w.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MakespanInto(dur, startBuf, finishBuf)
	}
}

func benchWorkload(b *testing.B, r *rng.Source, n, m int) *platform.Workload {
	b.Helper()
	bd := dag.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.05 {
				bd.MustAddEdge(u, v, r.Uniform(0, 8))
			}
		}
	}
	g := bd.MustBuild()
	bcet := platform.NewMatrix(n, m)
	ul := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			bcet.Set(i, j, r.Uniform(1, 20))
			ul.Set(i, j, r.Uniform(1, 6))
		}
	}
	w, err := platform.NewWorkload(g, platform.UniformSystem(m, 1), bcet, ul)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkNewSchedule100(b *testing.B) {
	r := rng.New(1)
	w := benchWorkload(b, r, 100, 4)
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromOrder(w, order, proc); err != nil {
			b.Fatal(err)
		}
	}
}
