package schedule

import (
	"sync"

	"robsched/internal/dag"
)

// arcSet is the processor-independent half of a disjunctive graph in CSR
// form: the task graph's data arcs, in both directions, with the raw data
// size of every arc and the index mapping between the two directions.
//
// Every schedule of the same task graph shares one arcSet; only the
// per-arc communication costs (which depend on the processor assignment)
// and the at-most-one disjunctive arc per task (which depends on the
// processor orders) vary per schedule, and those live in the Schedule
// itself. Splitting the CSR this way is what makes delta decoding cheap:
// a child schedule can copy its parent's per-arc costs and patch only the
// arcs incident to reassigned tasks, instead of re-deriving the whole
// adjacency structure.
type arcSet struct {
	n        int
	succOff  []int32   // n+1 offsets into succTo/succData/sMirror
	succTo   []int32   // data-arc targets, grouped by source
	succData []float64 // data size of each succ arc
	predOff  []int32   // n+1 offsets into predTo/pMirror
	predTo   []int32   // data-arc sources, grouped by target
	sMirror  []int32   // succ arc k -> index of the same arc in the pred CSR
	pMirror  []int32   // pred arc j -> index of the same arc in the succ CSR
}

// newArcSet builds the static CSR of a task graph. The pred-side fill
// order matches the legacy per-schedule construction arc for arc (cursor
// scatter over a successor sweep), so row-order-sensitive consumers such
// as CriticalPath keep their exact tie-breaking behaviour.
func newArcSet(g *dag.Graph) *arcSet {
	n, nE := g.N(), g.EdgeCount()
	a := &arcSet{
		n:        n,
		succOff:  make([]int32, n+1),
		succTo:   make([]int32, nE),
		succData: make([]float64, nE),
		predOff:  make([]int32, n+1),
		predTo:   make([]int32, nE),
		sMirror:  make([]int32, nE),
		pMirror:  make([]int32, nE),
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		a.succOff[v] = off
		off += int32(g.OutDegree(v))
	}
	a.succOff[n] = off
	off = 0
	for v := 0; v < n; v++ {
		a.predOff[v] = off
		off += int32(g.InDegree(v))
	}
	a.predOff[n] = off
	cur := make([]int32, n)
	for u := 0; u < n; u++ {
		base := a.succOff[u]
		for i, arc := range g.Successors(u) {
			k := base + int32(i)
			a.succTo[k] = int32(arc.To)
			a.succData[k] = arc.Data
			j := a.predOff[arc.To] + cur[arc.To]
			cur[arc.To]++
			a.predTo[j] = int32(u)
			a.sMirror[k] = j
			a.pMirror[j] = k
		}
	}
	return a
}

// arcCache memoizes one arcSet per task graph. Graphs are immutable, so
// pointer identity is a sound key. The cache is bounded: at capacity it is
// reset wholesale rather than evicted, which keeps long-running processes
// that churn through many workloads from pinning every graph forever.
var arcCache = struct {
	sync.Mutex
	m map[*dag.Graph]*arcSet
}{m: make(map[*dag.Graph]*arcSet)}

const arcCacheCap = 64

func arcsFor(g *dag.Graph) *arcSet {
	arcCache.Lock()
	a := arcCache.m[g]
	if a == nil {
		a = newArcSet(g)
		if len(arcCache.m) >= arcCacheCap {
			arcCache.m = make(map[*dag.Graph]*arcSet)
		}
		arcCache.m[g] = a
	}
	arcCache.Unlock()
	return a
}
