package schedule

import (
	"runtime"
	"testing"

	"robsched/internal/dag"
	"robsched/internal/platform"
	"robsched/internal/rng"
)

// TestTrustedDecodeMatchesFromOrder: the trusted constructor and the pooled
// decoder must reproduce FromOrder exactly — same topological order, same
// analysis, bit for bit — across many random workloads and chromosomes.
func TestTrustedDecodeMatchesFromOrder(t *testing.T) {
	r := rng.New(41)
	dur := []float64(nil)
	for trial := 0; trial < 60; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(50), 1+r.Intn(5))
		order := w.G.RandomTopologicalOrder(r)
		proc := make([]int, w.N())
		for i := range proc {
			proc[i] = r.Intn(w.M())
		}
		ref, err := FromOrder(w, order, proc)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(w)
		trusted, err := FromOrderTrusted(w, order, proc)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := dec.Decode(order, proc)
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string]*Schedule{"FromOrderTrusted": trusted, "Decoder": pooled} {
			if got.Makespan() != ref.Makespan() {
				t.Fatalf("%s: makespan %v != %v", name, got.Makespan(), ref.Makespan())
			}
			if got.AvgSlack() != ref.AvgSlack() || got.MinSlack() != ref.MinSlack() {
				t.Fatalf("%s: slack summary differs", name)
			}
			gotOrder, refOrder := got.Order(), ref.Order()
			gotProc, refProc := got.ProcAssignment(), ref.ProcAssignment()
			for v := 0; v < w.N(); v++ {
				if gotOrder[v] != refOrder[v] || gotProc[v] != refProc[v] {
					t.Fatalf("%s: order/proc differ at %d", name, v)
				}
				if got.Start(v) != ref.Start(v) || got.Finish(v) != ref.Finish(v) ||
					got.Slack(v) != ref.Slack(v) || got.BottomLevel(v) != ref.BottomLevel(v) {
					t.Fatalf("%s: analysis differs at task %d", name, v)
				}
			}
			ge, re := got.DisjunctiveEdges(), ref.DisjunctiveEdges()
			if len(ge) != len(re) {
				t.Fatalf("%s: %d disjunctive edges, want %d", name, len(ge), len(re))
			}
			for i := range ge {
				if ge[i] != re[i] {
					t.Fatalf("%s: disjunctive edge %d differs", name, i)
				}
			}
			if got.String() != ref.String() {
				t.Fatalf("%s: String() differs", name)
			}
			// A second forward pass under perturbed durations exercises the
			// CSR arcs directly.
			dur = append(dur[:0], ref.ExpectedDurations()...)
			for v := range dur {
				dur[v] *= 1.25
			}
			if got.MakespanWith(dur) != ref.MakespanWith(dur) {
				t.Fatalf("%s: MakespanWith differs", name)
			}
		}
	}
}

// TestTrustedDecodeRejectsInvalid: the trusted path skips only the
// precedence scan; every other malformation is still rejected, and
// same-processor precedence inversions surface as disjunctive-graph cycles.
func TestTrustedDecodeRejectsInvalid(t *testing.T) {
	b := dag.NewBuilder(2)
	b.MustAddEdge(0, 1, 1)
	w := twoTaskWorkload(t, b.MustBuild())

	if _, err := FromOrderTrusted(w, []int{0}, []int{0, 0}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := FromOrderTrusted(w, []int{0, 0}, []int{0, 0}); err == nil {
		t.Fatal("duplicate entry accepted")
	}
	if _, err := FromOrderTrusted(w, []int{0, 2}, []int{0, 0}); err == nil {
		t.Fatal("out-of-range task accepted")
	}
	if _, err := FromOrderTrusted(w, []int{0, 1}, []int{0, 2}); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
	// Same-processor inversion: order says 1 before 0 but 0→1 is an edge;
	// the disjunctive arc 1→0 closes a cycle with it.
	if _, err := FromOrderTrusted(w, []int{1, 0}, []int{0, 0}); err == nil {
		t.Fatal("same-processor precedence inversion accepted")
	}
	// The untrusted path catches the inversion even across processors.
	if _, err := FromOrder(w, []int{1, 0}, []int{0, 1}); err == nil {
		t.Fatal("FromOrder missed a cross-processor inversion")
	}
}

func twoTaskWorkload(t *testing.T, g *dag.Graph) *platform.Workload {
	t.Helper()
	exec, err := platform.MatrixFromRows([][]float64{{2, 3}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(2, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestDecodeSteadyStateAllocs locks in the fast path's allocation budget:
// once the pool is warm, one decode costs exactly the schedule's two arenas.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	r := rng.New(43)
	w := randomWorkload(t, r, 40, 4)
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	dec := NewDecoder(w)
	var s Schedule
	if err := dec.DecodeInto(&s, order, proc); err != nil { // warm the pool
		t.Fatal(err)
	}
	runtime.GC()
	avg := testing.AllocsPerRun(200, func() {
		if err := dec.DecodeInto(&s, order, proc); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("steady-state decode costs %.1f allocs, want <= 2", avg)
	}
}

func BenchmarkDecode(b *testing.B) {
	r := rng.New(1)
	w := benchWorkload(b, r, 100, 8)
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	dec := NewDecoder(w)
	var s Schedule
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.DecodeInto(&s, order, proc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromOrder(b *testing.B) {
	r := rng.New(1)
	w := benchWorkload(b, r, 100, 8)
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromOrder(w, order, proc); err != nil {
			b.Fatal(err)
		}
	}
}
