package schedule

import (
	"fmt"
	"runtime"
	"testing"

	"robsched/internal/platform"
	"robsched/internal/rng"
)

// sameSchedule fails the test unless every piece of state of got — exported
// and internal, analysis and adjacency — is bit-identical to want.
func sameSchedule(t *testing.T, ctx string, got, want *Schedule) {
	t.Helper()
	if got.makespan != want.makespan || got.avgSlack != want.avgSlack || got.minSlack != want.minSlack {
		t.Fatalf("%s: summary differs: (%v %v %v) != (%v %v %v)", ctx,
			got.makespan, got.avgSlack, got.minSlack, want.makespan, want.avgSlack, want.minSlack)
	}
	intSlices := [][2][]int32{
		{got.proc, want.proc}, {got.topo, want.topo}, {got.porder, want.porder},
		{got.porderOff, want.porderOff}, {got.dsucc, want.dsucc}, {got.dpred, want.dpred},
	}
	for si, pair := range intSlices {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: int slice %d length %d != %d", ctx, si, len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s: int slice %d differs at %d: %d != %d", ctx, si, i, pair[0][i], pair[1][i])
			}
		}
	}
	floatSlices := [][2][]float64{
		{got.succComm, want.succComm}, {got.predComm, want.predComm}, {got.expDur, want.expDur},
		{got.start, want.start}, {got.finish, want.finish}, {got.bl, want.bl}, {got.slack, want.slack},
	}
	for si, pair := range floatSlices {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: float slice %d length %d != %d", ctx, si, len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s: float slice %d differs at %d: %v != %v", ctx, si, i, pair[0][i], pair[1][i])
			}
		}
	}
}

// feasibleMove relocates the task at position i of order to a random
// position within its precedence-feasible window, like the GA's mutation
// operator, keeping the order topological. It reports the smallest position
// whose occupant changed (len(order) if the move was a no-op).
func feasibleMove(r *rng.Source, w *platform.Workload, order []int, i int) int {
	n := len(order)
	pos := make([]int, n)
	for p, v := range order {
		pos[v] = p
	}
	v := order[i]
	lo, hi := 0, n-1
	for _, a := range w.G.Predecessors(v) {
		if p := pos[a.To]; p+1 > lo {
			lo = p + 1
		}
	}
	for _, a := range w.G.Successors(v) {
		if p := pos[a.To]; p-1 < hi {
			hi = p - 1
		}
	}
	j := lo + r.Intn(hi-lo+1)
	if j == i {
		return n
	}
	if j < i {
		copy(order[j+1:i+1], order[j:i])
	} else {
		copy(order[i:j], order[i+1:j+1])
	}
	order[j] = v
	if j < i {
		return j
	}
	return i
}

// deriveChild perturbs a parent chromosome with GA-like edits (feasible
// order moves plus processor reassignments constrained to the changed
// region) and returns the child with the exact first-divergence index.
func deriveChild(r *rng.Source, w *platform.Workload, pOrder, pProc []int) (order, proc []int, firstDirty int) {
	n := len(pOrder)
	order = append([]int(nil), pOrder...)
	proc = append([]int(nil), pProc...)
	d := n
	for moves := r.Intn(3); moves >= 0; moves-- {
		if m := feasibleMove(r, w, order, r.Intn(n)); m < d {
			d = m
		}
	}
	pos := make([]int, n)
	for p, v := range order {
		pos[v] = p
	}
	// Processor reassignments pull d down to the earliest reassigned
	// position, keeping it the exact first divergence of (order, proc).
	for changes := 1 + r.Intn(3); changes > 0; changes-- {
		v := order[r.Intn(n)]
		np := r.Intn(w.M())
		if np == proc[v] {
			continue
		}
		proc[v] = np
		if pos[v] < d {
			d = pos[v]
		}
	}
	return order, proc, d
}

// TestDecodeDeltaMatchesFull: for random parent/child pairs and every legal
// dirty-frontier claim — from the exact first divergence all the way down
// to 1 — the delta decode must be bit-identical to a full decode of the
// child, across every field of the schedule.
func TestDecodeDeltaMatchesFull(t *testing.T) {
	r := rng.New(97)
	for trial := 0; trial < 80; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(30), 1+r.Intn(5))
		n := w.N()
		dec := NewDecoder(w)
		pOrder := w.G.RandomTopologicalOrder(r)
		pProc := make([]int, n)
		for i := range pProc {
			pProc[i] = r.Intn(w.M())
		}
		parent, err := dec.Decode(pOrder, pProc)
		if err != nil {
			t.Fatal(err)
		}
		order, proc, d := deriveChild(r, w, pOrder, pProc)
		want, err := dec.Decode(order, proc)
		if err != nil {
			t.Fatalf("trial %d: full decode of child: %v", trial, err)
		}
		// The exact claim plus every conservative (smaller) claim; small
		// trials sweep all of them, larger ones sample.
		claims := []int{d, 1, 1 + r.Intn(d+1)}
		if n <= 16 {
			claims = claims[:0]
			for c := 1; c <= d; c++ {
				claims = append(claims, c)
			}
		}
		for _, claim := range claims {
			if claim > d || claim < 1 {
				continue
			}
			var got Schedule
			frontier, full, err := dec.DecodeDelta(parent, &got, order, proc, claim)
			if err != nil {
				t.Fatalf("trial %d claim %d: %v", trial, claim, err)
			}
			if full {
				t.Fatalf("trial %d claim %d: unexpected fallback to full decode", trial, claim)
			}
			if frontier < 0 || frontier > n {
				t.Fatalf("trial %d claim %d: frontier %d out of range", trial, claim, frontier)
			}
			sameSchedule(t, "delta", &got, want)
		}
		// A claim past the true divergence must be caught by prefix
		// verification and fall back to a bit-identical full decode. The
		// composed d can undershoot (edits may cancel out), so compute the
		// exact divergence here.
		trueD := n
		for i := 0; i < n; i++ {
			if order[i] != pOrder[i] {
				trueD = i
				break
			}
		}
		for i, v := range order {
			if proc[v] != pProc[v] && i < trueD {
				trueD = i
			}
		}
		if trueD < n {
			var got Schedule
			_, full, err := dec.DecodeDelta(parent, &got, order, proc, trueD+1)
			if err != nil {
				t.Fatalf("trial %d overclaim: %v", trial, err)
			}
			if !full {
				t.Fatalf("trial %d: overclaimed prefix not detected", trial)
			}
			sameSchedule(t, "fallback", &got, want)
		}
	}
}

// TestDecodeDeltaFromNewBuiltParent: delta decoding against a parent built
// by New (the HEFT seed path) uses the parent's Kahn order as its
// scheduling string; results must still match the full decode bit for bit.
func TestDecodeDeltaFromNewBuiltParent(t *testing.T) {
	r := rng.New(131)
	for trial := 0; trial < 30; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(25), 1+r.Intn(4))
		parent := randomSchedule(t, r, w)
		// Rebuild the same schedule through New's explicit-list path.
		lists := make([][]int, w.M())
		for p := range lists {
			lists[p] = parent.ProcOrder(p)
		}
		viaNew, err := New(w, parent.ProcAssignment(), lists)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(w)
		order, proc, d := deriveChild(r, w, viaNew.Order(), viaNew.ProcAssignment())
		if d < 1 {
			continue
		}
		want, err := dec.Decode(order, proc)
		if err != nil {
			t.Fatal(err)
		}
		var got Schedule
		_, full, err := dec.DecodeDelta(viaNew, &got, order, proc, d)
		if err != nil {
			t.Fatal(err)
		}
		if full {
			t.Fatalf("trial %d: unexpected fallback", trial)
		}
		sameSchedule(t, "new-built parent", &got, want)
	}
}

// TestDecodeDeltaRejectsInvalid: malformed children are rejected exactly
// like the full path rejects them, regardless of the claimed frontier.
func TestDecodeDeltaRejectsInvalid(t *testing.T) {
	r := rng.New(7)
	w := randomWorkload(t, r, 12, 3)
	dec := NewDecoder(w)
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	parent, err := dec.Decode(order, proc)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]int(nil), order...)
	bad[6] = bad[5] // duplicate task
	var s Schedule
	if _, _, err := dec.DecodeDelta(parent, &s, bad, proc, 3); err == nil {
		t.Fatal("duplicate entry accepted")
	}
	badProc := make([]int, w.N())
	badProc[8] = w.M()
	if _, _, err := dec.DecodeDelta(parent, &s, order, badProc, 3); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
	// A suffix precedence inversion must be caught by the position check.
	inv := append([]int(nil), order...)
	swapped := false
	for i := 3; i+1 < len(inv); i++ {
		if w.G.HasEdge(inv[i], inv[i+1]) {
			inv[i], inv[i+1] = inv[i+1], inv[i]
			swapped = true
			break
		}
	}
	if swapped {
		if _, _, err := dec.DecodeDelta(parent, &s, inv, proc, 3); err == nil {
			t.Fatal("suffix precedence inversion accepted")
		}
	}
}

// TestDecodeDeltaSteadyStateAllocs: the delta path has the same allocation
// budget as the full path — the schedule's two arenas, nothing else.
func TestDecodeDeltaSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	r := rng.New(43)
	w := randomWorkload(t, r, 40, 4)
	dec := NewDecoder(w)
	pOrder := w.G.RandomTopologicalOrder(r)
	pProc := make([]int, w.N())
	for i := range pProc {
		pProc[i] = r.Intn(w.M())
	}
	parent, err := dec.Decode(pOrder, pProc)
	if err != nil {
		t.Fatal(err)
	}
	order, proc, d := deriveChild(r, w, pOrder, pProc)
	if d < 1 {
		t.Skip("derived child identical to parent")
	}
	var s Schedule
	if _, _, err := dec.DecodeDelta(parent, &s, order, proc, d); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	avg := testing.AllocsPerRun(200, func() {
		if _, _, err := dec.DecodeDelta(parent, &s, order, proc, d); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("steady-state delta decode costs %.1f allocs, want <= 2", avg)
	}
}

func deltaBenchSetup(b *testing.B, n, m int) (*Decoder, *Schedule, [][]int, [][]int, []int) {
	b.Helper()
	r := rng.New(1)
	w := benchWorkload(b, r, n, m)
	dec := NewDecoder(w)
	pOrder := w.G.RandomTopologicalOrder(r)
	pProc := make([]int, n)
	for i := range pProc {
		pProc[i] = r.Intn(m)
	}
	parent, err := dec.Decode(pOrder, pProc)
	if err != nil {
		b.Fatal(err)
	}
	const children = 64
	orders := make([][]int, children)
	procs := make([][]int, children)
	dirty := make([]int, children)
	for c := range orders {
		var d int
		orders[c], procs[c], d = deriveChildBench(r, w, pOrder, pProc)
		dirty[c] = d
	}
	return dec, parent, orders, procs, dirty
}

// deriveChildBench mirrors deriveChild without *testing.T plumbing.
func deriveChildBench(r *rng.Source, w *platform.Workload, pOrder, pProc []int) ([]int, []int, int) {
	n := len(pOrder)
	order := append([]int(nil), pOrder...)
	proc := append([]int(nil), pProc...)
	d := n
	if m := feasibleMove(r, w, order, r.Intn(n)); m < d {
		d = m
	}
	pos := make([]int, n)
	for p, v := range order {
		pos[v] = p
	}
	v := order[r.Intn(n)]
	if np := r.Intn(w.M()); np != proc[v] {
		proc[v] = np
		if pos[v] < d {
			d = pos[v]
		}
	}
	if d < 1 {
		d = 1
	}
	return order, proc, d
}

// BenchmarkDecodeDelta decodes GA-like children incrementally from their
// parent; BenchmarkDecodeFull decodes the same children from scratch.
func BenchmarkDecodeDelta(b *testing.B) {
	dec, parent, orders, procs, dirty := deltaBenchSetup(b, 100, 8)
	var s Schedule
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i & 63
		if _, _, err := dec.DecodeDelta(parent, &s, orders[c], procs[c], dirty[c]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFull(b *testing.B) {
	dec, _, orders, procs, _ := deltaBenchSetup(b, 100, 8)
	var s Schedule
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i & 63
		if err := dec.DecodeInto(&s, orders[c], procs[c]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeDeltaCut resolves the delta/full crossover point: each
// sub-benchmark decodes children whose single edit (a processor
// reassignment) sits at a fixed fraction of the scheduling string, so the
// clean prefix is exactly that fraction of the graph. The evaluator's
// full-decode threshold is calibrated against this curve.
func BenchmarkDecodeDeltaCut(b *testing.B) {
	const n, m = 100, 8
	r := rng.New(1)
	w := benchWorkload(b, r, n, m)
	dec := NewDecoder(w)
	pOrder := w.G.RandomTopologicalOrder(r)
	pProc := make([]int, n)
	for i := range pProc {
		pProc[i] = r.Intn(m)
	}
	parent, err := dec.Decode(pOrder, pProc)
	if err != nil {
		b.Fatal(err)
	}
	for _, pct := range []int{10, 25, 50, 75, 90} {
		b.Run(fmt.Sprintf("prefix%d", pct), func(b *testing.B) {
			d := n * pct / 100
			proc := append([]int(nil), pProc...)
			v := pOrder[d]
			proc[v] = (proc[v] + 1) % m
			var s Schedule
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, full, err := dec.DecodeDelta(parent, &s, pOrder, proc, d); err != nil || full {
					b.Fatalf("full=%v err=%v", full, err)
				}
			}
		})
	}
}
