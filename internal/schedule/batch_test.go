package schedule

import (
	"testing"

	"robsched/internal/dag"
	"robsched/internal/platform"
	"robsched/internal/rng"
)

// TestMakespanBatchMatchesScalar: the batched SoA sweep must reproduce the
// scalar forward pass bit for bit in every lane, for every lane count,
// across random workloads and schedules.
func TestMakespanBatchMatchesScalar(t *testing.T) {
	r := rng.New(301)
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(t, r, 2+r.Intn(60), 1+r.Intn(5))
		s := randomSchedule(t, r, w)
		n := w.N()
		for _, lanes := range []int{1, 2, 3, 8, 17} {
			dur := make([]float64, n*lanes)
			for v := 0; v < n; v++ {
				for l := 0; l < lanes; l++ {
					dur[v*lanes+l] = w.SampleDuration(v, s.Proc(v), r)
				}
			}
			out := make([]float64, lanes)
			st := make([]float64, lanes)
			finish := make([]float64, n*lanes)
			s.MakespanBatchInto(lanes, dur, st, finish, out)

			scalarDur := make([]float64, n)
			startBuf := make([]float64, n)
			finishBuf := make([]float64, n)
			for l := 0; l < lanes; l++ {
				for v := 0; v < n; v++ {
					scalarDur[v] = dur[v*lanes+l]
				}
				want := s.MakespanInto(scalarDur, startBuf, finishBuf)
				if out[l] != want {
					t.Fatalf("trial %d lanes %d: lane %d makespan %v != scalar %v",
						trial, lanes, l, out[l], want)
				}
				// Finish times are lane-exact too (downstream slack analyses
				// may build on them).
				for v := 0; v < n; v++ {
					if finish[v*lanes+l] != finishBuf[v] {
						t.Fatalf("trial %d lanes %d: lane %d finish[%d] %v != scalar %v",
							trial, lanes, l, v, finish[v*lanes+l], finishBuf[v])
					}
				}
			}
		}
	}
}

func benchWorkloadAndSchedule(b *testing.B) (*platform.Workload, *Schedule) {
	b.Helper()
	r := rng.New(7)
	n, m := 100, 8
	gb := dag.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n && v < u+12; v++ {
			if r.Float64() < 0.25 {
				gb.MustAddEdge(u, v, r.Uniform(0, 8))
			}
		}
	}
	bcet := platform.NewMatrix(n, m)
	ul := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			bcet.Set(i, j, r.Uniform(1, 20))
			ul.Set(i, j, r.Uniform(1, 6))
		}
	}
	w, err := platform.NewWorkload(gb.MustBuild(), platform.UniformSystem(m, 1), bcet, ul)
	if err != nil {
		b.Fatal(err)
	}
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, n)
	for i := range proc {
		proc[i] = r.Intn(m)
	}
	s, err := FromOrder(w, order, proc)
	if err != nil {
		b.Fatal(err)
	}
	return w, s
}

// BenchmarkRealizeBatch measures the batched forward kernel: 8 lanes of an
// n=100, m=8 schedule per sweep, reported per single realization so it is
// directly comparable to BenchmarkRealizeScalar. Tracked in BENCH_sim.json
// via bench.sh.
func BenchmarkRealizeBatch(b *testing.B) {
	w, s := benchWorkloadAndSchedule(b)
	const lanes = 8
	n := w.N()
	r := rng.New(11)
	dur := make([]float64, n*lanes)
	for i := range dur {
		dur[i] = w.SampleDuration(i/lanes, s.Proc(i/lanes), r)
	}
	st := make([]float64, lanes)
	finish := make([]float64, n*lanes)
	out := make([]float64, lanes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MakespanBatchInto(lanes, dur, st, finish, out)
	}
	// One op = lanes realizations; normalize for comparability.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/realization")
}

// BenchmarkRealizeScalar is the per-realization scalar baseline the batched
// kernel is measured against.
func BenchmarkRealizeScalar(b *testing.B) {
	w, s := benchWorkloadAndSchedule(b)
	n := w.N()
	r := rng.New(11)
	dur := make([]float64, n)
	for i := range dur {
		dur[i] = w.SampleDuration(i, s.Proc(i), r)
	}
	startBuf := make([]float64, n)
	finishBuf := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MakespanInto(dur, startBuf, finishBuf)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/realization")
}
