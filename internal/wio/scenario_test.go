package wio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"robsched/internal/fault"
	"robsched/internal/rng"
)

func TestScenarioRoundTrip(t *testing.T) {
	mo := fault.Model{MTBF: 40, OutageEvery: 25, OutageMean: 3, SlowEvery: 20, SlowMean: 4, SlowFactor: 2.5}
	sc, err := mo.Scenario(4, 120, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != sc.M {
		t.Fatalf("M %d != %d", got.M, sc.M)
	}
	for p := 0; p < sc.M; p++ {
		// FailAt may be nil on the decoded side only if no processor fails.
		want := math.Inf(1)
		if sc.FailAt != nil {
			want = sc.FailAt[p]
		}
		gotAt := math.Inf(1)
		if got.FailAt != nil {
			gotAt = got.FailAt[p]
		}
		if gotAt != want {
			t.Fatalf("processor %d FailAt %g != %g", p, gotAt, want)
		}
		var wantO, gotO []fault.Interval
		if sc.Outages != nil {
			wantO = sc.Outages[p]
		}
		if got.Outages != nil {
			gotO = got.Outages[p]
		}
		if len(wantO) != len(gotO) {
			t.Fatalf("processor %d outage count %d != %d", p, len(gotO), len(wantO))
		}
		for i := range wantO {
			if wantO[i] != gotO[i] {
				t.Fatalf("processor %d outage %d: %+v != %+v", p, i, gotO[i], wantO[i])
			}
		}
		var wantS, gotS []fault.Slowdown
		if sc.Slowdowns != nil {
			wantS = sc.Slowdowns[p]
		}
		if got.Slowdowns != nil {
			gotS = got.Slowdowns[p]
		}
		if len(wantS) != len(gotS) {
			t.Fatalf("processor %d slowdown count %d != %d", p, len(gotS), len(wantS))
		}
		for i := range wantS {
			if wantS[i] != gotS[i] {
				t.Fatalf("processor %d slowdown %d: %+v != %+v", p, i, gotS[i], wantS[i])
			}
		}
	}
}

func TestScenarioEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScenario(&buf, fault.None()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("empty scenario round-tripped into %+v", got)
	}
}

func TestScenarioBuildSortsEvents(t *testing.T) {
	// Out-of-order (but disjoint) event lists must be accepted and sorted.
	doc := ScenarioJSON{
		Procs: 2,
		Outages: []OutageJSON{
			{Proc: 0, Start: 10, End: 12},
			{Proc: 0, Start: 2, End: 4},
		},
		Slowdowns: []SlowdownJSON{
			{Proc: 1, Start: 9, End: 11, Factor: 3},
			{Proc: 1, Start: 1, End: 2, Factor: 2},
		},
	}
	sc, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Outages[0][0].Start != 2 || sc.Outages[0][1].Start != 10 {
		t.Fatalf("outages not sorted: %+v", sc.Outages[0])
	}
	if sc.Slowdowns[1][0].Start != 1 {
		t.Fatalf("slowdowns not sorted: %+v", sc.Slowdowns[1])
	}
}

func TestScenarioRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"procs": -1}`,
		`{"procs": 1, "failures": [{"proc": 2, "at": 5}]}`,
		`{"procs": 1, "failures": [{"proc": 0, "at": 5}, {"proc": 0, "at": 7}]}`,
		`{"procs": 1, "failures": [{"proc": 0, "at": -5}]}`,
		`{"procs": 1, "outages": [{"proc": 0, "start": 5, "end": 3}]}`,
		`{"procs": 1, "outages": [{"proc": 0, "start": 1, "end": 4}, {"proc": 0, "start": 3, "end": 6}]}`,
		`{"procs": 1, "slowdowns": [{"proc": 0, "start": 1, "end": 2, "factor": 0.5}]}`,
		`{"procs": 0, "failures": [{"proc": 0, "at": 1}]}`,
		`{"procs": 1, "unknown_field": true}`,
		`garbage`,
	}
	for i, doc := range cases {
		if _, err := ReadScenario(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d accepted: %s", i, doc)
		}
	}
}

// FuzzReadScenario drives the scenario parser with arbitrary input: never
// panic, and every accepted scenario must validate and round-trip.
func FuzzReadScenario(f *testing.F) {
	mo := fault.Model{MTBF: 30, OutageEvery: 20, OutageMean: 2}
	if sc, err := mo.Scenario(3, 80, rng.New(2)); err == nil {
		var buf bytes.Buffer
		if err := WriteScenario(&buf, sc); err == nil {
			f.Add(buf.String())
		}
	}
	f.Add(`{"procs": 2}`)
	f.Add(`{"procs": 2, "failures": [{"proc": 0, "at": 3.5}]}`)
	f.Add(`{"procs": 1, "outages": [{"proc": 0, "start": 1, "end": 2}]}`)
	f.Add(`{"procs": 1, "slowdowns": [{"proc": 0, "start": 1, "end": 2, "factor": 2}]}`)
	f.Add(`{"procs": -3}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, doc string) {
		sc, err := ReadScenario(strings.NewReader(doc))
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario does not validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteScenario(&buf, sc); err != nil {
			t.Fatalf("accepted scenario does not serialize: %v", err)
		}
		sc2, err := ReadScenario(&buf)
		if err != nil {
			t.Fatalf("serialized scenario does not parse: %v", err)
		}
		if sc2.M != sc.M || sc2.Empty() != sc.Empty() {
			t.Fatal("round trip changed the scenario shape")
		}
	})
}
