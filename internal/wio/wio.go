// Package wio serializes workloads and schedules to JSON so the command-
// line tools can exchange problem instances and results: a workload file
// carries the task graph, transfer rates, BCET and UL matrices; a schedule
// file carries the assignment and per-processor orders plus the analysis
// headline numbers.
package wio

import (
	"encoding/json"
	"fmt"
	"io"

	"robsched/internal/dag"
	"robsched/internal/platform"
	"robsched/internal/schedule"
)

// WorkloadJSON is the on-disk form of a workload.
type WorkloadJSON struct {
	// Tasks is the number of tasks.
	Tasks int `json:"tasks"`
	// Edges lists the precedence edges with their data volumes.
	Edges []EdgeJSON `json:"edges"`
	// Rates is the m×m transfer rate matrix (diagonal ignored).
	Rates [][]float64 `json:"rates"`
	// BCET is the n×m best-case execution time matrix.
	BCET [][]float64 `json:"bcet"`
	// UL is the n×m uncertainty level matrix (entries ≥ 1). Optional: when
	// omitted, all levels default to 1 (deterministic durations).
	UL [][]float64 `json:"ul,omitempty"`
}

// EdgeJSON is one precedence edge.
type EdgeJSON struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Data float64 `json:"data"`
}

// NewWorkloadJSON converts a live workload to its document form. Build is
// the inverse; the round trip reconstructs an identical workload, which is
// what lets a dist coordinator ship a problem instance to worker processes
// over the wire with bit-identical downstream results.
func NewWorkloadJSON(w *platform.Workload) WorkloadJSON {
	n := w.N()
	doc := WorkloadJSON{Tasks: n}
	for _, e := range w.G.Edges() {
		doc.Edges = append(doc.Edges, EdgeJSON{e.From, e.To, e.Data})
	}
	doc.Rates = matrixRows(ratesOf(w.Sys))
	doc.BCET = make([][]float64, n)
	doc.UL = make([][]float64, n)
	for i := 0; i < n; i++ {
		doc.BCET[i] = append([]float64(nil), w.BCET.Row(i)...)
		doc.UL[i] = append([]float64(nil), w.UL.Row(i)...)
	}
	return doc
}

// WriteWorkload serializes w as indented JSON.
func WriteWorkload(out io.Writer, w *platform.Workload) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(NewWorkloadJSON(w))
}

// ratesOf reconstructs the system's rate matrix.
func ratesOf(sys *platform.System) platform.Matrix {
	m := sys.M()
	rates := platform.NewMatrix(m, m)
	for p := 0; p < m; p++ {
		for q := 0; q < m; q++ {
			if p != q {
				rates.Set(p, q, sys.Rate(p, q))
			}
		}
	}
	return rates
}

func matrixRows(m platform.Matrix) [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// ReadWorkload parses and validates a workload document.
func ReadWorkload(in io.Reader) (*platform.Workload, error) {
	var doc WorkloadJSON
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("wio: decoding workload: %w", err)
	}
	return doc.Build()
}

// Build validates the document into a live workload.
func (doc WorkloadJSON) Build() (*platform.Workload, error) {
	if doc.Tasks <= 0 {
		return nil, fmt.Errorf("wio: workload has %d tasks", doc.Tasks)
	}
	b := dag.NewBuilder(doc.Tasks)
	for _, e := range doc.Edges {
		if err := b.AddEdge(e.From, e.To, e.Data); err != nil {
			return nil, fmt.Errorf("wio: %w", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("wio: %w", err)
	}
	rates, err := platform.MatrixFromRows(doc.Rates)
	if err != nil {
		return nil, fmt.Errorf("wio: rates: %w", err)
	}
	// The diagonal is ignored semantically but must pass validation.
	for p := 0; p < rates.Rows() && p < rates.Cols(); p++ {
		if rates.At(p, p) == 0 {
			rates.Set(p, p, 1)
		}
	}
	sys, err := platform.NewSystem(rates)
	if err != nil {
		return nil, fmt.Errorf("wio: %w", err)
	}
	bcet, err := platform.MatrixFromRows(doc.BCET)
	if err != nil {
		return nil, fmt.Errorf("wio: bcet: %w", err)
	}
	var ul platform.Matrix
	if doc.UL == nil {
		ul = platform.NewMatrix(bcet.Rows(), bcet.Cols())
		ul.Fill(1)
	} else {
		ul, err = platform.MatrixFromRows(doc.UL)
		if err != nil {
			return nil, fmt.Errorf("wio: ul: %w", err)
		}
	}
	w, err := platform.NewWorkload(g, sys, bcet, ul)
	if err != nil {
		return nil, fmt.Errorf("wio: %w", err)
	}
	return w, nil
}

// ScheduleJSON is the on-disk form of a schedule plus its analysis
// headline numbers (informational on write, ignored on read).
type ScheduleJSON struct {
	Proc      []int   `json:"proc"`
	ProcOrder [][]int `json:"proc_order"`
	Makespan  float64 `json:"makespan,omitempty"`
	AvgSlack  float64 `json:"avg_slack,omitempty"`
}

// NewScheduleJSON converts a live schedule to its document form, headline
// numbers included. Bind is the inverse.
func NewScheduleJSON(s *schedule.Schedule) ScheduleJSON {
	doc := ScheduleJSON{
		Proc:     s.ProcAssignment(),
		Makespan: s.Makespan(),
		AvgSlack: s.AvgSlack(),
	}
	for p := 0; p < s.Workload().M(); p++ {
		doc.ProcOrder = append(doc.ProcOrder, s.ProcOrder(p))
	}
	return doc
}

// WriteSchedule serializes s as indented JSON.
func WriteSchedule(out io.Writer, s *schedule.Schedule) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(NewScheduleJSON(s))
}

// Bind validates the document against the workload and returns the live
// schedule. The headline fields (makespan, slack) are informational and
// ignored; the schedule recomputes them.
func (doc ScheduleJSON) Bind(w *platform.Workload) (*schedule.Schedule, error) {
	s, err := schedule.New(w, doc.Proc, doc.ProcOrder)
	if err != nil {
		return nil, fmt.Errorf("wio: %w", err)
	}
	return s, nil
}

// ReadSchedule parses a schedule document and binds it to the workload,
// re-validating every constraint.
func ReadSchedule(in io.Reader, w *platform.Workload) (*schedule.Schedule, error) {
	var doc ScheduleJSON
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("wio: decoding schedule: %w", err)
	}
	return doc.Bind(w)
}
