// Frame codec: the length-prefixed binary envelope the dist coordinator and
// its worker processes exchange over pipes. A frame is
//
//	magic    2 bytes  'r' 'b'
//	version  1 byte   frameVersion
//	kind     1 byte   opaque to this package; internal/dist defines the values
//	length   4 bytes  little-endian payload size
//	checksum 4 bytes  little-endian CRC-32 (IEEE) of kind byte then payload
//	payload  length bytes
//
// The header is fixed-size and the payload length is bounded, so a reader
// can never be tricked into an unbounded allocation by a corrupt stream —
// the property FuzzReadFrame locks down. The checksum turns in-flight bit
// damage anywhere in the frame into a typed *FrameError rather than a
// silently different payload: a flipped bit in a JSON control message can
// otherwise still parse, with a different value. Payload contents are the
// caller's business: dist uses JSON for control messages and raw
// little-endian float64 blocks for makespan vectors.
package wio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameMagic0  = 'r'
	frameMagic1  = 'b'
	frameVersion = 2
	frameHeader  = 12

	// MaxFramePayload caps a single frame's payload (64 MiB). A realization
	// vector of a million samples is 8 MB; control messages are far smaller.
	// Anything larger indicates a corrupt or hostile stream.
	MaxFramePayload = 64 << 20
)

// FrameError reports a malformed or corrupted frame. It distinguishes
// protocol corruption from plain I/O failures (which pass through
// unwrapped).
type FrameError struct{ Reason string }

func (e *FrameError) Error() string { return "wio: bad frame: " + e.Reason }

// frameSum covers the kind byte and the payload, so damage to either —
// including a flip that turns one valid frame kind into another — fails
// verification.
func frameSum(kind byte, payload []byte) uint32 {
	// One manual table step folds the kind byte in without building a
	// single-byte slice (which escapes): crc32.Update(0, tab, []byte{kind})
	// written out as the reflected-CRC recurrence.
	crc := ^uint32(0)
	crc = crc32.IEEETable[byte(crc)^kind] ^ (crc >> 8)
	return crc32.Update(^crc, crc32.IEEETable, payload)
}

func buildHeader(kind byte, payload []byte) [frameHeader]byte {
	var hdr [frameHeader]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = frameMagic0, frameMagic1, frameVersion, kind
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], frameSum(kind, payload))
	return hdr
}

// WriteFrame writes one frame. It returns an error if the payload exceeds
// MaxFramePayload or the writer fails; partial writes leave the stream
// unusable, so callers treat any error as fatal to the connection.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return &FrameError{fmt.Sprintf("payload %d exceeds %d bytes", len(payload), MaxFramePayload)}
	}
	hdr := buildHeader(kind, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// AppendFrame appends one encoded frame (header + payload) to dst and
// returns the extended slice. It is the buffer-building form of WriteFrame,
// used where a frame must exist as raw bytes before hitting the wire — the
// dist chaos transport builds frames this way so it can truncate or flip
// bits in the encoded form. The same payload bound applies.
func AppendFrame(dst []byte, kind byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return dst, &FrameError{fmt.Sprintf("payload %d exceeds %d bytes", len(payload), MaxFramePayload)}
	}
	hdr := buildHeader(kind, payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// readHeader reads and validates one frame header into hdr (caller-supplied
// so a long-lived reader pays no per-frame allocation for it), returning the
// kind, the payload length and the expected checksum. A clean EOF before any
// header byte surfaces as io.EOF — the peer closed between frames.
func readHeader(r io.Reader, hdr *[frameHeader]byte) (kind byte, n uint32, sum uint32, err error) {
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, 0, 0, err // io.EOF here means "no more frames"
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, 0, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, 0, 0, &FrameError{fmt.Sprintf("magic %#02x%02x", hdr[0], hdr[1])}
	}
	if hdr[2] != frameVersion {
		return 0, 0, 0, &FrameError{fmt.Sprintf("version %d (want %d)", hdr[2], frameVersion)}
	}
	n = binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return 0, 0, 0, &FrameError{fmt.Sprintf("payload %d exceeds %d bytes", n, MaxFramePayload)}
	}
	return hdr[3], n, binary.LittleEndian.Uint32(hdr[8:]), nil
}

// readPayload fills payload from r and verifies the frame checksum.
func readPayload(r io.Reader, kind byte, payload []byte, sum uint32) error {
	if len(payload) > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	if got := frameSum(kind, payload); got != sum {
		return &FrameError{fmt.Sprintf("checksum %#08x (want %#08x)", got, sum)}
	}
	return nil
}

// ReadFrame reads one frame, reusing buf for the payload when it is large
// enough (pass nil to always allocate). A clean EOF before any header byte
// surfaces as io.EOF — the peer closed between frames; a header with the
// wrong magic, version, an oversized length or a payload that fails its
// checksum returns a *FrameError, and a stream that ends mid-frame returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (kind byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	kind, n, sum, err := readHeader(r, &hdr)
	if err != nil {
		return 0, nil, err
	}
	if int(n) <= cap(buf) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if err := readPayload(r, kind, payload, sum); err != nil {
		return 0, nil, err
	}
	return kind, payload, nil
}

// FrameReader reads frames from one stream, owning a payload buffer that is
// reused across calls and grown geometrically — the steady state of a long
// vector stream reads every frame with zero allocations, where bare
// ReadFrame calls with an exact-fit buffer reallocate on every size
// increase. The returned payload aliases the internal buffer and is valid
// only until the next Read.
type FrameReader struct {
	r   io.Reader
	buf []byte
	hdr [frameHeader]byte
}

// NewFrameReader wraps r. Callers wanting buffered I/O should pass a
// *bufio.Reader; FrameReader only manages the payload buffer.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Read reads one frame with ReadFrame's exact error contract. The payload
// is valid until the next Read.
func (fr *FrameReader) Read() (kind byte, payload []byte, err error) {
	kind, n, sum, err := readHeader(fr.r, &fr.hdr)
	if err != nil {
		return 0, nil, err
	}
	if int(n) > cap(fr.buf) {
		newCap := 2 * cap(fr.buf)
		if newCap < int(n) {
			newCap = int(n)
		}
		if newCap < 512 {
			newCap = 512
		}
		if newCap > MaxFramePayload {
			newCap = MaxFramePayload
		}
		fr.buf = make([]byte, newCap)
	}
	payload = fr.buf[:n]
	if err := readPayload(fr.r, kind, payload, sum); err != nil {
		return 0, nil, err
	}
	return kind, payload, nil
}
