// Frame codec: the length-prefixed binary envelope the dist coordinator and
// its worker processes exchange over pipes. A frame is
//
//	magic   2 bytes  'r' 'b'
//	version 1 byte   frameVersion
//	kind    1 byte   opaque to this package; internal/dist defines the values
//	length  4 bytes  little-endian payload size
//	payload length bytes
//
// The header is fixed-size and the payload length is bounded, so a reader
// can never be tricked into an unbounded allocation by a corrupt stream —
// the property FuzzReadFrame locks down. Payload contents are the caller's
// business: dist uses JSON for control messages and raw little-endian
// float64 blocks for makespan vectors.
package wio

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	frameMagic0  = 'r'
	frameMagic1  = 'b'
	frameVersion = 1
	frameHeader  = 8

	// MaxFramePayload caps a single frame's payload (64 MiB). A realization
	// vector of a million samples is 8 MB; control messages are far smaller.
	// Anything larger indicates a corrupt or hostile stream.
	MaxFramePayload = 64 << 20
)

// FrameError reports a malformed frame header. It distinguishes protocol
// corruption from plain I/O failures (which pass through unwrapped).
type FrameError struct{ Reason string }

func (e *FrameError) Error() string { return "wio: bad frame: " + e.Reason }

// WriteFrame writes one frame. It returns an error if the payload exceeds
// MaxFramePayload or the writer fails; partial writes leave the stream
// unusable, so callers treat any error as fatal to the connection.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return &FrameError{fmt.Sprintf("payload %d exceeds %d bytes", len(payload), MaxFramePayload)}
	}
	var hdr [frameHeader]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = frameMagic0, frameMagic1, frameVersion, kind
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, reusing buf for the payload when it is large
// enough (pass nil to always allocate). A clean EOF before any header byte
// surfaces as io.EOF — the peer closed between frames; a header with the
// wrong magic, version or an oversized length returns a *FrameError, and a
// stream that ends mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (kind byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF here means "no more frames"
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, nil, &FrameError{fmt.Sprintf("magic %#02x%02x", hdr[0], hdr[1])}
	}
	if hdr[2] != frameVersion {
		return 0, nil, &FrameError{fmt.Sprintf("version %d (want %d)", hdr[2], frameVersion)}
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return 0, nil, &FrameError{fmt.Sprintf("payload %d exceeds %d bytes", n, MaxFramePayload)}
	}
	if int(n) <= cap(buf) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if n > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}
	return hdr[3], payload, nil
}
