package wio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"robsched/internal/fault"
)

// ScenarioJSON is the on-disk form of a fault scenario. Events are listed
// flat (one record per event, tagged with its processor) rather than as
// per-processor arrays: the list form keeps never-failing processors out
// of the file entirely and avoids encoding +Inf, which JSON cannot carry.
type ScenarioJSON struct {
	// Procs is the number of processors the scenario is sized for; 0 means
	// "fits any platform" and is only valid for an event-free scenario.
	Procs     int            `json:"procs"`
	Failures  []FailureJSON  `json:"failures,omitempty"`
	Outages   []OutageJSON   `json:"outages,omitempty"`
	Slowdowns []SlowdownJSON `json:"slowdowns,omitempty"`
}

// FailureJSON is a permanent fail-stop failure of one processor.
type FailureJSON struct {
	Proc int     `json:"proc"`
	At   float64 `json:"at"`
}

// OutageJSON is a transient outage interval on one processor.
type OutageJSON struct {
	Proc  int     `json:"proc"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// SlowdownJSON is a degraded-performance interval on one processor.
type SlowdownJSON struct {
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Factor float64 `json:"factor"`
}

// WriteScenario serializes sc as indented JSON.
func WriteScenario(out io.Writer, sc fault.Scenario) error {
	if err := sc.Validate(); err != nil {
		return fmt.Errorf("wio: %w", err)
	}
	doc := ScenarioJSON{Procs: sc.M}
	for p, at := range sc.FailAt {
		if !math.IsInf(at, 1) {
			doc.Failures = append(doc.Failures, FailureJSON{Proc: p, At: at})
		}
	}
	for p, ivs := range sc.Outages {
		for _, iv := range ivs {
			doc.Outages = append(doc.Outages, OutageJSON{Proc: p, Start: iv.Start, End: iv.End})
		}
	}
	for p, sls := range sc.Slowdowns {
		for _, sl := range sls {
			doc.Slowdowns = append(doc.Slowdowns, SlowdownJSON{Proc: p, Start: sl.Start, End: sl.End, Factor: sl.Factor})
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadScenario parses and validates a fault-scenario document.
func ReadScenario(in io.Reader) (fault.Scenario, error) {
	var doc ScenarioJSON
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fault.Scenario{}, fmt.Errorf("wio: decoding scenario: %w", err)
	}
	return doc.Build()
}

// Build validates the document into a live scenario. Per-processor event
// lists are sorted by start time; overlapping events are rejected by the
// scenario's own validation.
func (doc ScenarioJSON) Build() (fault.Scenario, error) {
	if doc.Procs < 0 {
		return fault.Scenario{}, fmt.Errorf("wio: scenario has %d processors", doc.Procs)
	}
	sc := fault.Scenario{M: doc.Procs}
	checkProc := func(kind string, p int) error {
		if p < 0 || p >= doc.Procs {
			return fmt.Errorf("wio: %s on processor %d, scenario has %d", kind, p, doc.Procs)
		}
		return nil
	}
	if len(doc.Failures) > 0 {
		sc.FailAt = make([]float64, doc.Procs)
		for p := range sc.FailAt {
			sc.FailAt[p] = math.Inf(1)
		}
		for _, f := range doc.Failures {
			if err := checkProc("failure", f.Proc); err != nil {
				return fault.Scenario{}, err
			}
			if sc.FailAt[f.Proc] < math.Inf(1) {
				return fault.Scenario{}, fmt.Errorf("wio: processor %d fails twice", f.Proc)
			}
			sc.FailAt[f.Proc] = f.At
		}
	}
	if len(doc.Outages) > 0 {
		sc.Outages = make([][]fault.Interval, doc.Procs)
		for _, o := range doc.Outages {
			if err := checkProc("outage", o.Proc); err != nil {
				return fault.Scenario{}, err
			}
			sc.Outages[o.Proc] = append(sc.Outages[o.Proc], fault.Interval{Start: o.Start, End: o.End})
		}
		for p := range sc.Outages {
			sort.Slice(sc.Outages[p], func(a, b int) bool { return sc.Outages[p][a].Start < sc.Outages[p][b].Start })
		}
	}
	if len(doc.Slowdowns) > 0 {
		sc.Slowdowns = make([][]fault.Slowdown, doc.Procs)
		for _, s := range doc.Slowdowns {
			if err := checkProc("slowdown", s.Proc); err != nil {
				return fault.Scenario{}, err
			}
			sc.Slowdowns[s.Proc] = append(sc.Slowdowns[s.Proc], fault.Slowdown{Start: s.Start, End: s.End, Factor: s.Factor})
		}
		for p := range sc.Slowdowns {
			sort.Slice(sc.Slowdowns[p], func(a, b int) bool { return sc.Slowdowns[p][a].Start < sc.Slowdowns[p][b].Start })
		}
	}
	if err := sc.Validate(); err != nil {
		return fault.Scenario{}, fmt.Errorf("wio: %w", err)
	}
	return sc, nil
}
