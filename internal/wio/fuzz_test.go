package wio

import (
	"bytes"
	"strings"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/rng"
)

// FuzzReadWorkload drives the JSON workload parser with arbitrary input:
// it must never panic and every accepted document must build a usable,
// internally consistent workload.
func FuzzReadWorkload(f *testing.F) {
	// Seed corpus: valid documents plus near-misses.
	p := gen.PaperParams()
	p.N, p.M = 8, 2
	if w, err := gen.Random(p, rng.New(1)); err == nil {
		var buf bytes.Buffer
		if err := WriteWorkload(&buf, w); err == nil {
			f.Add(buf.String())
		}
	}
	f.Add(`{"tasks": 2, "edges": [{"from":0,"to":1,"data":3}], "rates": [[0,1],[1,0]], "bcet": [[2,4],[3,1]]}`)
	f.Add(`{"tasks": 1, "rates": [[0]], "bcet": [[1]], "ul": [[2]]}`)
	f.Add(`{"tasks": -1}`)
	f.Add(`{"tasks": 2, "edges": [{"from":0,"to":1},{"from":1,"to":0}], "rates": [[0,1],[1,0]], "bcet": [[1,1],[1,1]]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"tasks": 1e9}`)
	f.Fuzz(func(t *testing.T, doc string) {
		w, err := ReadWorkload(strings.NewReader(doc))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// Accepted documents must round-trip into an equivalent workload.
		if w.N() < 1 || w.M() < 1 {
			t.Fatalf("accepted workload with shape %dx%d", w.N(), w.M())
		}
		var buf bytes.Buffer
		if err := WriteWorkload(&buf, w); err != nil {
			t.Fatalf("accepted workload does not serialize: %v", err)
		}
		w2, err := ReadWorkload(&buf)
		if err != nil {
			t.Fatalf("serialized workload does not parse: %v", err)
		}
		if w2.N() != w.N() || w2.M() != w.M() || w2.G.EdgeCount() != w.G.EdgeCount() {
			t.Fatal("round trip changed the workload shape")
		}
	})
}

// FuzzReadSchedule drives the schedule parser against a fixed workload.
func FuzzReadSchedule(f *testing.F) {
	f.Add(`{"proc": [0,0], "proc_order": [[0,1],[]]}`)
	f.Add(`{"proc": [0,1], "proc_order": [[0],[1]]}`)
	f.Add(`{"proc": [1,0], "proc_order": [[1],[0]]}`)
	f.Add(`{"proc": [0], "proc_order": [[0]]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, doc string) {
		w, err := ReadWorkload(strings.NewReader(
			`{"tasks": 2, "edges": [{"from":0,"to":1,"data":1}], "rates": [[0,1],[1,0]], "bcet": [[1,1],[1,1]]}`))
		if err != nil {
			t.Fatal(err)
		}
		s, err := ReadSchedule(strings.NewReader(doc), w)
		if err != nil {
			return
		}
		// Accepted schedules are valid: makespan positive, all tasks
		// placed.
		if s.Makespan() <= 0 {
			t.Fatal("accepted schedule with non-positive makespan")
		}
	})
}

// FuzzReadFrame drives the binary frame codec with arbitrary bytes: the
// reader must never panic or allocate past MaxFramePayload, a decoded frame
// must re-encode to the bytes it was decoded from, and every frame produced
// by WriteFrame must decode to exactly what was written.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, 3, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{'r', 'b', 1, 0, 0, 0, 0, 0})
	f.Add([]byte{'r', 'b', 1, 7, 4, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{'r', 'b', 2, 0, 0, 0, 0, 0})          // wrong version
	f.Add([]byte{'r', 'b', 1, 0, 0xFF, 0xFF, 0xFF, 0}) // oversized
	f.Add([]byte("short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		kind, payload, err := ReadFrame(r, nil)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// Round trip: re-encoding the decoded frame must reproduce the
		// consumed prefix of the input byte for byte.
		var out bytes.Buffer
		if err := WriteFrame(&out, kind, payload); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("round trip changed the frame: %x -> %x", data[:consumed], out.Bytes())
		}
	})
}
