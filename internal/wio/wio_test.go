package wio

import (
	"bytes"
	"strings"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/rng"
)

func TestWorkloadRoundTrip(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M = 20, 3
	w, err := gen.Random(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.N() != w.N() || w2.M() != w.M() || w2.G.EdgeCount() != w.G.EdgeCount() {
		t.Fatalf("shape changed: %dx%d %d edges vs %dx%d %d edges",
			w2.N(), w2.M(), w2.G.EdgeCount(), w.N(), w.M(), w.G.EdgeCount())
	}
	for i := 0; i < w.N(); i++ {
		for j := 0; j < w.M(); j++ {
			if w2.BCET.At(i, j) != w.BCET.At(i, j) || w2.UL.At(i, j) != w.UL.At(i, j) {
				t.Fatalf("matrix entry (%d,%d) changed", i, j)
			}
		}
	}
	for _, e := range w.G.Edges() {
		d, ok := w2.G.Data(e.From, e.To)
		if !ok || d != e.Data {
			t.Fatalf("edge %d->%d changed", e.From, e.To)
		}
	}
	// Scheduling the round-tripped workload gives identical makespans.
	s1, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := heft.HEFT(w2, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan() != s2.Makespan() {
		t.Fatalf("HEFT makespan changed after round trip: %g vs %g", s1.Makespan(), s2.Makespan())
	}
}

func TestWorkloadDefaultUL(t *testing.T) {
	doc := `{
  "tasks": 2,
  "edges": [{"from": 0, "to": 1, "data": 3}],
  "rates": [[0, 1], [1, 0]],
  "bcet": [[2, 4], [3, 1]]
}`
	w, err := ReadWorkload(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if w.UL.At(i, j) != 1 {
				t.Fatalf("UL default not 1 at (%d,%d)", i, j)
			}
		}
	}
}

func TestReadWorkloadErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", "not json"},
		{"unknown field", `{"tasks": 1, "rates": [[0]], "bcet": [[1]], "bogus": 3}`},
		{"no tasks", `{"tasks": 0, "rates": [[0]], "bcet": [[1]]}`},
		{"bad edge", `{"tasks": 2, "edges": [{"from": 0, "to": 5, "data": 1}], "rates": [[0,1],[1,0]], "bcet": [[1,1],[1,1]]}`},
		{"cycle", `{"tasks": 2, "edges": [{"from":0,"to":1,"data":0},{"from":1,"to":0,"data":0}], "rates": [[0,1],[1,0]], "bcet": [[1,1],[1,1]]}`},
		{"ragged bcet", `{"tasks": 2, "rates": [[0,1],[1,0]], "bcet": [[1,1],[1]]}`},
		{"bcet shape", `{"tasks": 2, "rates": [[0,1],[1,0]], "bcet": [[1,1]]}`},
		{"ul below one", `{"tasks": 1, "rates": [[0]], "bcet": [[1]], "ul": [[0.5]]}`},
		{"zero rate", `{"tasks": 1, "rates": [[0,0],[0,0]], "bcet": [[1,1]]}`},
	}
	for _, c := range cases {
		if _, err := ReadWorkload(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M = 15, 3
	w, err := gen.Random(p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadSchedule(&buf, w)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan() != s.Makespan() || s2.AvgSlack() != s.AvgSlack() {
		t.Fatalf("schedule changed: M %g->%g slack %g->%g",
			s.Makespan(), s2.Makespan(), s.AvgSlack(), s2.AvgSlack())
	}
}

func TestReadScheduleRejectsInvalid(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M = 5, 2
	w, err := gen.Random(p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// A schedule document with a missing task.
	doc := `{"proc": [0,0,0,0,0], "proc_order": [[0,1,2,3],[]]}`
	if _, err := ReadSchedule(strings.NewReader(doc), w); err == nil {
		t.Fatal("invalid schedule accepted")
	}
	if _, err := ReadSchedule(strings.NewReader("nope"), w); err == nil {
		t.Fatal("garbage accepted")
	}
}
