package wio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0},
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	var buf bytes.Buffer
	for kind, p := range payloads {
		if err := WriteFrame(&buf, byte(kind), p); err != nil {
			t.Fatalf("write kind %d: %v", kind, err)
		}
	}
	scratch := make([]byte, 16)
	for kind, want := range payloads {
		k, got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("read kind %d: %v", kind, err)
		}
		if int(k) != kind {
			t.Fatalf("kind %d read back as %d", kind, k)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("kind %d payload mismatch: %d bytes, want %d", kind, len(got), len(want))
		}
	}
	if _, _, err := ReadFrame(&buf, nil); err != io.EOF {
		t.Fatalf("drained stream returned %v, want io.EOF", err)
	}
}

func TestFrameReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 8)
	_, payload, err := ReadFrame(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &scratch[0] {
		t.Error("payload not served from the caller's buffer")
	}
}

func TestFrameRejectsOversizedWrite(t *testing.T) {
	// Don't allocate 64 MiB: an io.Writer is never reached because the
	// length check fires first, so a huge zero-length-backed slice works.
	big := make([]byte, MaxFramePayload+1)
	var fe *FrameError
	if err := WriteFrame(io.Discard, 1, big); !errors.As(err, &fe) {
		t.Fatalf("oversized payload accepted: %v", err)
	}
}

func TestFrameReadErrors(t *testing.T) {
	mk := func(b []byte) io.Reader { return bytes.NewReader(b) }
	// A well-formed empty frame, to corrupt field by field.
	var good bytes.Buffer
	if err := WriteFrame(&good, 0, nil); err != nil {
		t.Fatal(err)
	}
	hdr := good.Bytes()
	mut := func(i int, b byte) []byte {
		out := append([]byte(nil), hdr...)
		out[i] = b
		return out
	}
	var payloadFrame bytes.Buffer
	if err := WriteFrame(&payloadFrame, 0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), payloadFrame.Bytes()...)
	flipped[len(flipped)-1] ^= 0x01 // damage the payload, keep the length
	cases := []struct {
		name    string
		in      []byte
		isFrame bool // expect *FrameError (vs io error)
	}{
		{"bad magic", mut(0, 'x'), true},
		{"bad version", mut(2, 9), true},
		{"oversized length", []byte{'r', 'b', 2, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, true},
		{"bad checksum", mut(8, hdr[8]^0xFF), true},
		{"corrupt payload", flipped, true},
		{"truncated header", hdr[:3], false},
		{"truncated payload", payloadFrame.Bytes()[:len(payloadFrame.Bytes())-2], false},
	}
	for _, tc := range cases {
		_, _, err := ReadFrame(mk(tc.in), nil)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var fe *FrameError
		if got := errors.As(err, &fe); got != tc.isFrame {
			t.Errorf("%s: error %v (FrameError=%v, want %v)", tc.name, err, got, tc.isFrame)
		}
	}
	// Truncations must be io.ErrUnexpectedEOF, not a silent io.EOF, so a
	// reader loop can tell "peer closed cleanly" from "died mid-frame".
	if _, _, err := ReadFrame(mk(hdr[:3]), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header: %v, want io.ErrUnexpectedEOF", err)
	}
	if _, _, err := ReadFrame(mk(nil), nil); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
}

// TestFrameReaderRoundTrip: FrameReader returns the same frames and errors
// as bare ReadFrame, growing its buffer across mixed payload sizes, with
// the payload aliasing the internal buffer between calls.
func TestFrameReaderRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("hello"),
		bytes.Repeat([]byte{0xCD}, 1<<12),
		[]byte("small again"),
		bytes.Repeat([]byte{0x11}, 1<<14),
	}
	var buf bytes.Buffer
	for kind, p := range payloads {
		if err := WriteFrame(&buf, byte(kind), p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for kind, want := range payloads {
		k, got, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", kind, err)
		}
		if int(k) != kind || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: kind %d, %d bytes (want %d)", kind, k, len(got), len(want))
		}
	}
	if _, _, err := fr.Read(); err != io.EOF {
		t.Fatalf("drained stream returned %v, want io.EOF", err)
	}
	// Error contract matches ReadFrame's.
	bad := []byte{'x', 'b', 2, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	var fe *FrameError
	if _, _, err := NewFrameReader(bytes.NewReader(bad)).Read(); !errors.As(err, &fe) {
		t.Fatalf("bad magic returned %v, want *FrameError", err)
	}
}

// TestFrameReaderSteadyStateAllocs pins the hot-path property the dist
// vector stream depends on: once the buffer has grown to the stream's frame
// size, reading a frame allocates nothing.
func TestFrameReaderSteadyStateAllocs(t *testing.T) {
	var one bytes.Buffer
	if err := WriteFrame(&one, 2, bytes.Repeat([]byte{0x3F}, 4096)); err != nil {
		t.Fatal(err)
	}
	raw := one.Bytes()
	r := bytes.NewReader(raw)
	fr := NewFrameReader(r)
	if _, _, err := fr.Read(); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(raw)
		if _, _, err := fr.Read(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Read allocates %.1f objects/frame, want 0", allocs)
	}
}

// BenchmarkReadFrame contrasts the per-call allocation of bare ReadFrame
// (nil buffer: one payload allocation per frame) with FrameReader's reused
// buffer (zero steady-state allocations). Run with -benchmem.
func BenchmarkReadFrame(b *testing.B) {
	var one bytes.Buffer
	if err := WriteFrame(&one, 2, bytes.Repeat([]byte{0x3F}, 8+8*1024)); err != nil {
		b.Fatal(err)
	}
	raw := one.Bytes()
	b.Run("alloc", func(b *testing.B) {
		r := bytes.NewReader(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			if _, _, err := ReadFrame(r, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reader", func(b *testing.B) {
		r := bytes.NewReader(raw)
		fr := NewFrameReader(r)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			if _, _, err := fr.Read(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
