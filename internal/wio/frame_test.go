package wio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0},
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	var buf bytes.Buffer
	for kind, p := range payloads {
		if err := WriteFrame(&buf, byte(kind), p); err != nil {
			t.Fatalf("write kind %d: %v", kind, err)
		}
	}
	scratch := make([]byte, 16)
	for kind, want := range payloads {
		k, got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("read kind %d: %v", kind, err)
		}
		if int(k) != kind {
			t.Fatalf("kind %d read back as %d", kind, k)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("kind %d payload mismatch: %d bytes, want %d", kind, len(got), len(want))
		}
	}
	if _, _, err := ReadFrame(&buf, nil); err != io.EOF {
		t.Fatalf("drained stream returned %v, want io.EOF", err)
	}
}

func TestFrameReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 8)
	_, payload, err := ReadFrame(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &scratch[0] {
		t.Error("payload not served from the caller's buffer")
	}
}

func TestFrameRejectsOversizedWrite(t *testing.T) {
	// Don't allocate 64 MiB: an io.Writer is never reached because the
	// length check fires first, so a huge zero-length-backed slice works.
	big := make([]byte, MaxFramePayload+1)
	var fe *FrameError
	if err := WriteFrame(io.Discard, 1, big); !errors.As(err, &fe) {
		t.Fatalf("oversized payload accepted: %v", err)
	}
}

func TestFrameReadErrors(t *testing.T) {
	mk := func(b []byte) io.Reader { return bytes.NewReader(b) }
	cases := []struct {
		name    string
		in      []byte
		isFrame bool // expect *FrameError (vs io error)
	}{
		{"bad magic", []byte{'x', 'y', 1, 0, 0, 0, 0, 0}, true},
		{"bad version", []byte{'r', 'b', 9, 0, 0, 0, 0, 0}, true},
		{"oversized length", []byte{'r', 'b', 1, 0, 0xFF, 0xFF, 0xFF, 0xFF}, true},
		{"truncated header", []byte{'r', 'b', 1}, false},
		{"truncated payload", []byte{'r', 'b', 1, 0, 4, 0, 0, 0, 'a'}, false},
	}
	for _, tc := range cases {
		_, _, err := ReadFrame(mk(tc.in), nil)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var fe *FrameError
		if got := errors.As(err, &fe); got != tc.isFrame {
			t.Errorf("%s: error %v (FrameError=%v, want %v)", tc.name, err, got, tc.isFrame)
		}
	}
	// Truncations must be io.ErrUnexpectedEOF, not a silent io.EOF, so a
	// reader loop can tell "peer closed cleanly" from "died mid-frame".
	if _, _, err := ReadFrame(mk([]byte{'r', 'b', 1}), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header: %v, want io.ErrUnexpectedEOF", err)
	}
	if _, _, err := ReadFrame(mk(nil), nil); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
}
