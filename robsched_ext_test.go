package robsched_test

// Public-API tests for the extensions beyond the paper: Pareto fronts,
// weighted-sum scalarization, the dynamic online dispatcher, risk-adjusted
// scheduling and the tail metrics.

import (
	"math"
	"testing"

	"robsched"
)

func extWorkload(t testing.TB, seed uint64, n, m int, ul float64) *robsched.Workload {
	t.Helper()
	p := robsched.PaperWorkloadParams()
	p.N, p.M, p.MeanUL = n, m, ul
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicParetoFront(t *testing.T) {
	w := extWorkload(t, 1, 30, 4, 4)
	opt := robsched.PaperParetoOptions()
	opt.PopSize = 16
	opt.MaxGenerations = 40
	front, err := robsched.SolvePareto(w, opt, robsched.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 2 {
		t.Fatalf("front has %d points", len(front))
	}
	// Non-dominated and sorted.
	objs := make([][]float64, len(front))
	for i, p := range front {
		objs[i] = []float64{p.Makespan, -p.Slack}
	}
	if nd := robsched.ParetoFilter(objs); len(nd) != len(front) {
		t.Fatalf("front contains dominated points: %d of %d survive", len(nd), len(front))
	}
	// Hypervolume positive against a dominated reference.
	ref := [2]float64{front[len(front)-1].Makespan * 2, 1}
	if hv := robsched.Hypervolume2D(objs, ref); hv <= 0 {
		t.Fatalf("hypervolume = %g", hv)
	}
}

func TestPublicWeightedSum(t *testing.T) {
	w := extWorkload(t, 3, 25, 3, 3)
	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1)
	opt.MaxGenerations = 60
	opt.Stagnation = 0
	res, err := robsched.SolveWeightedSum(w, 0.8, opt, robsched.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > res.MHEFT+1e-9 {
		// weight 0.8 strongly emphasizes makespan; HEFT seed + elitism
		// still guarantee the makespan term never regresses past HEFT when
		// weight is 1, but at 0.8 slack can buy some makespan. Just check
		// sanity bounds.
		if res.Schedule.Makespan() > 3*res.MHEFT {
			t.Fatalf("weighted-sum schedule implausibly slow: %g vs HEFT %g",
				res.Schedule.Makespan(), res.MHEFT)
		}
	}
}

func TestPublicDynamicDispatcher(t *testing.T) {
	w := extWorkload(t, 5, 30, 4, 4)
	m, err := robsched.EvaluateDynamic(w, robsched.SimOptions{Realizations: 150}, robsched.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanMakespan <= 0 || m.Realizations != 150 {
		t.Fatalf("bad dynamic metrics: %+v", m)
	}
	// Single simulated execution through the public API.
	durs := robsched.RealizeDurations(w, robsched.NewRNG(7))
	res, err := robsched.SimulateDynamic(w, durs, w.Expected(), robsched.UpwardRanks(w))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.Proc) != w.N() {
		t.Fatalf("bad dynamic result: %+v", res)
	}
}

func TestPublicRiskAdjusted(t *testing.T) {
	w := extWorkload(t, 8, 25, 3, 5)
	sigma := robsched.SigmaMatrix(w)
	if sigma.Rows() != w.N() || sigma.Cols() != w.M() {
		t.Fatal("sigma shape wrong")
	}
	view, err := robsched.RiskAdjustedWorkload(w, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Adjusted durations strictly exceed the plain expectations wherever
	// sigma is positive.
	grew := false
	for i := 0; i < w.N(); i++ {
		for j := 0; j < w.M(); j++ {
			if view.ExpectedAt(i, j) < w.ExpectedAt(i, j)-1e-12 {
				t.Fatal("risk adjustment shrank a duration")
			}
			if view.ExpectedAt(i, j) > w.ExpectedAt(i, j) {
				grew = true
			}
		}
	}
	if !grew {
		t.Fatal("risk adjustment had no effect at UL=5")
	}
	s, err := robsched.RiskHEFT(w, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// The returned schedule is bound to the original workload: its M0 uses
	// plain expectations.
	if s.Workload() != w {
		t.Fatal("risk HEFT schedule not bound to the original workload")
	}
	// Rebind round trip.
	back, err := robsched.RebindSchedule(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if back.Makespan() != s.Makespan() {
		t.Fatal("rebind changed the analysis")
	}
}

func TestPublicTailMetrics(t *testing.T) {
	w := extWorkload(t, 9, 30, 4, 4)
	s, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := robsched.Evaluate(s, robsched.SimOptions{Realizations: 1000, Deadline: 1e12}, robsched.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	if !(m.P50 <= m.P95 && m.P95 <= m.P99) {
		t.Fatalf("tail quantiles out of order: %g %g %g", m.P50, m.P95, m.P99)
	}
	if m.DeadlineMissRate != 0 {
		t.Fatalf("huge deadline missed: %g", m.DeadlineMissRate)
	}
	if math.IsNaN(m.P95) {
		t.Fatal("NaN quantile")
	}
}

func TestPublicBatchAndAnneal(t *testing.T) {
	w := extWorkload(t, 11, 25, 3, 3)
	for _, rule := range []robsched.BatchRule{robsched.MinMin, robsched.MaxMin} {
		s, err := robsched.BatchSchedule(w, rule)
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		if s.Makespan() <= 0 {
			t.Fatalf("%v: bad makespan", rule)
		}
	}
	opt := robsched.PaperishAnnealOptions(1.4)
	opt.Steps = 2000
	res, err := robsched.SolveAnneal(w, opt, robsched.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > 1.4*res.MHEFT+1e-9 {
		t.Fatal("SA result infeasible")
	}
}

func TestPublicScheduleAnalysis(t *testing.T) {
	w := extWorkload(t, 13, 30, 4, 3)
	s, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	cp := s.CriticalPath()
	if len(cp) == 0 {
		t.Fatal("empty critical path")
	}
	for _, v := range cp {
		if s.Slack(v) > 1e-9 {
			t.Fatalf("critical task %d has slack", v)
		}
	}
	util := s.ProcessorUtilization()
	if len(util) != w.M() {
		t.Fatal("utilization length wrong")
	}
	if s.TotalIdleTime() < 0 || s.LoadImbalance() < 0 {
		t.Fatal("negative idle/imbalance")
	}
}

func TestPublicRealizeAll(t *testing.T) {
	w := extWorkload(t, 17, 25, 3, 4)
	heft, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	cpop, err := robsched.CPOP(w)
	if err != nil {
		t.Fatal(err)
	}
	opt := robsched.SimOptions{Realizations: 300}
	mks, err := robsched.RealizeAll([]*robsched.Schedule{heft, cpop}, opt, robsched.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	if len(mks) != 2 || len(mks[0]) != 300 || len(mks[1]) != 300 {
		t.Fatalf("bad sample shape: %d schedules", len(mks))
	}
	// The raw sample is the exact substrate of the metric views (same seed,
	// same realizations), and it must be independent of the parallel fan-out.
	m, err := robsched.Evaluate(heft, opt, robsched.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	for _, x := range mks[0] {
		if x <= 0 {
			t.Fatalf("non-positive makespan %g", x)
		}
		if x > m.P95 {
			above++
		}
	}
	if got := float64(above) / 300; got > 0.05+1e-12 {
		t.Errorf("%.3f of the sample exceeds its own P95", got)
	}
	par, err := robsched.RealizeAll([]*robsched.Schedule{heft, cpop},
		robsched.SimOptions{Realizations: 300, Workers: 4, BatchSize: 3}, robsched.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	for j := range mks {
		for i := range mks[j] {
			if mks[j][i] != par[j][i] {
				t.Fatalf("schedule %d realization %d varies with workers/batch", j, i)
			}
		}
	}
}

func TestPublicAntithetic(t *testing.T) {
	w := extWorkload(t, 15, 20, 3, 3)
	s, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := robsched.Evaluate(s, robsched.SimOptions{Realizations: 200, Antithetic: true}, robsched.NewRNG(16))
	if err != nil {
		t.Fatal(err)
	}
	if m.Realizations != 200 || m.MeanMakespan <= 0 {
		t.Fatalf("bad antithetic metrics: %+v", m)
	}
}
