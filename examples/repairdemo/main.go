// Repairdemo tells the execution-time side of the robustness story: the
// same static schedule is executed against identical disrupted
// environments under three runtime policies — rigid right-shift (the
// paper's semantics), reactive rescheduling with increasingly nervous
// thresholds — and compared with the robust GA schedule that needs no
// repair because it absorbed the uncertainty at planning time. It closes
// with the question robustness ultimately answers: what deadline can each
// strategy promise with 95% confidence?
//
// Run with:
//
//	go run ./examples/repairdemo
package main

import (
	"fmt"
	"log"

	"robsched"
)

func main() {
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 60, 6
	p.MeanUL = 6 // heavy uncertainty: durations up to 11× best case
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(31))
	if err != nil {
		log.Fatal(err)
	}
	heft, err := robsched.HEFT(w)
	if err != nil {
		log.Fatal(err)
	}
	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
	opt.MaxGenerations = 300
	opt.Stagnation = 60
	res, err := robsched.Solve(w, opt, robsched.NewRNG(32))
	if err != nil {
		log.Fatal(err)
	}
	ga := res.Schedule

	fmt.Printf("workload: %d tasks on %d processors, mean UL %.0f\n", w.N(), w.M(), p.MeanUL)
	fmt.Printf("plans: HEFT M0 = %.1f (slack %.1f) | robust GA M0 = %.1f (slack %.1f)\n\n",
		heft.Makespan(), heft.AvgSlack(), ga.Makespan(), ga.AvgSlack())

	// One concrete disrupted environment, executed under each policy.
	durs := robsched.RealizeDurations(w, robsched.NewRNG(33))
	fmt.Println("one disrupted realization of the environment:")
	for _, pol := range []struct {
		name string
		p    robsched.RepairPolicy
	}{
		{"right-shift (no repair)", robsched.NeverReschedule()},
		{"repair @ θ=0.10", robsched.RepairPolicy{Threshold: 0.10}},
		{"repair @ θ=0.02", robsched.RepairPolicy{Threshold: 0.02}},
	} {
		o, err := robsched.ExecuteWithRepair(heft, durs, pol.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  HEFT under %-24s makespan %8.1f  (reschedules: %d)\n",
			pol.name+":", o.Makespan, o.Reschedules)
	}
	oga, err := robsched.ExecuteWithRepair(ga, durs, robsched.NeverReschedule())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  robust GA, no repair needed:       makespan %8.1f\n\n", oga.Makespan)

	// The statistical picture over 600 realizations.
	const n = 600
	fmt.Printf("over %d realizations:\n", n)
	fmt.Printf("  %-28s %10s %10s %12s\n", "strategy", "mean", "p95", "reschedules")
	simOpt := robsched.SimOptions{Realizations: n}
	rigid, err := robsched.EvaluateWithRepair(heft, robsched.NeverReschedule(), simOpt, robsched.NewRNG(34))
	if err != nil {
		log.Fatal(err)
	}
	react, err := robsched.EvaluateWithRepair(heft, robsched.RepairPolicy{Threshold: 0.05}, simOpt, robsched.NewRNG(34))
	if err != nil {
		log.Fatal(err)
	}
	gaStat, err := robsched.Evaluate(ga, simOpt, robsched.NewRNG(34))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %10.1f %10.1f %12s\n", "HEFT right-shift", rigid.MeanMakespan, rigid.P95, "0")
	fmt.Printf("  %-28s %10.1f %10.1f %12.2f\n", "HEFT + repair θ=0.05", react.MeanMakespan, react.P95, react.MeanReschedules)
	fmt.Printf("  %-28s %10.1f %10.1f %12s\n", "robust GA (static)", gaStat.MeanMakespan, gaStat.P95, "0")

	// Promisable deadlines at 95% confidence.
	dHeft, err := robsched.DeadlineForConfidence(heft, 0.95, simOpt, robsched.NewRNG(35))
	if err != nil {
		log.Fatal(err)
	}
	dGA, err := robsched.DeadlineForConfidence(ga, 0.95, simOpt, robsched.NewRNG(35))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n95%%-confidence deadlines: HEFT %.1f | robust GA %.1f\n", dHeft, dGA)
	fmt.Println("(the GA schedule's promise costs more expected time but is kept more calmly:")
	fmt.Printf(" miss rate against its own M0: GA %.2f vs HEFT %.2f)\n", gaStat.MissRate, rigid.MissRate)
}
