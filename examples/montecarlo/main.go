// Montecarlo compares four schedulers — HEFT, CPOP, a random valid
// schedule, and the paper's robust GA — across increasing uncertainty
// levels, evaluating each schedule on the same sampled environments. It
// reproduces the qualitative message of the paper's Section 5: deterministic
// list schedulers win on expected makespan but degrade under uncertainty,
// and slack buys the GA its robustness.
//
// Run with:
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"

	"robsched"
)

func main() {
	for _, ul := range []float64{2, 4, 8} {
		p := robsched.PaperWorkloadParams()
		p.N, p.M = 50, 4
		p.MeanUL = ul
		w, err := robsched.GenerateWorkload(p, robsched.NewRNG(uint64(10*ul)))
		if err != nil {
			log.Fatal(err)
		}

		heft, err := robsched.HEFT(w)
		if err != nil {
			log.Fatal(err)
		}
		cpop, err := robsched.CPOP(w)
		if err != nil {
			log.Fatal(err)
		}
		random, err := robsched.RandomSchedule(w, robsched.NewRNG(1))
		if err != nil {
			log.Fatal(err)
		}
		opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
		opt.MaxGenerations = 300
		opt.Stagnation = 60
		res, err := robsched.Solve(w, opt, robsched.NewRNG(2))
		if err != nil {
			log.Fatal(err)
		}

		names := []string{"HEFT", "CPOP", "random", "robust GA"}
		schedules := []*robsched.Schedule{heft, cpop, random, res.Schedule}
		ms, err := robsched.EvaluateAll(schedules, robsched.SimOptions{Realizations: 1000}, robsched.NewRNG(3))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== UL = %.0f (durations up to %.0f× the best case) ===\n", ul, 2*ul-1)
		fmt.Printf("%-10s %10s %10s %10s %10s %10s %10s\n",
			"scheduler", "M0", "mean", "p95", "slack", "R1", "R2")
		for i, s := range schedules {
			m := ms[i]
			// p95 approximated from mean + 1.645·std of the realized
			// distribution (reported for orientation only).
			p95 := m.MeanMakespan + 1.645*m.StdMakespan
			fmt.Printf("%-10s %10.1f %10.1f %10.1f %10.2f %10.2f %10.2f\n",
				names[i], m.M0, m.MeanMakespan, p95, s.AvgSlack(), m.R1, m.R2)
		}
		fmt.Println()
	}
	fmt.Println("reading the table: R1 = 1/E[tardiness], R2 = 1/miss-rate; larger is more robust.")
	fmt.Println("the GA concedes expected makespan (M0) to HEFT but holds it under uncertainty.")
}
