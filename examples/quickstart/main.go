// Quickstart walks through the library end to end on the paper's Fig. 1
// setting: an 8-task graph on 4 processors. It builds the workload,
// schedules it with HEFT, re-schedules it with the bi-objective robust GA,
// prints both Gantt charts and slack tables, and compares their robustness
// under 1000 Monte-Carlo realizations of the uncertain task durations.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"robsched"
)

func main() {
	// The Fig. 1-style task graph: 8 tasks, single entry (v1), single exit
	// (v8), every edge moving 5 units of data.
	g := robsched.PaperExampleGraph(5)

	// Four identical-rate links; heterogeneous execution times with medium
	// task and machine heterogeneity (COV 0.5), and uncertainty level ~2
	// (real durations up to 3× the best case).
	r := robsched.NewRNG(2006)
	sys := robsched.UniformSystem(4, 1)
	bcet := robsched.ExecMatrix(g.N(), 4, 10, 0.5, 0.5, r)
	ul := robsched.ULMatrix(g.N(), 4, 2.0, 0.5, 0.5, r)
	w, err := robsched.NewWorkload(g, sys, bcet, ul)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: HEFT on the expected durations.
	heft, err := robsched.HEFT(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== HEFT baseline ===")
	describe(heft)

	// The paper's bi-objective GA: maximize average slack subject to
	// M0 ≤ 1.3 · M_HEFT.
	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.3)
	res, err := robsched.Solve(w, opt, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Robust GA (ε = 1.3) ===")
	fmt.Printf("evolved %d generations (stagnated: %v)\n", res.Generations, res.Stagnated)
	describe(res.Schedule)

	// Evaluate both schedules on the same 1000 sampled environments.
	ms, err := robsched.EvaluateAll(
		[]*robsched.Schedule{heft, res.Schedule},
		robsched.PaperSimOptions(), robsched.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Monte-Carlo robustness (1000 realizations) ===")
	fmt.Printf("%-22s %12s %12s\n", "", "HEFT", "robust GA")
	row := func(name string, a, b float64) { fmt.Printf("%-22s %12.4g %12.4g\n", name, a, b) }
	row("expected makespan M0", ms[0].M0, ms[1].M0)
	row("realized mean", ms[0].MeanMakespan, ms[1].MeanMakespan)
	row("mean tardiness E[δ]", ms[0].MeanTardiness, ms[1].MeanTardiness)
	row("miss rate α", ms[0].MissRate, ms[1].MissRate)
	row("robustness R1 = 1/E[δ]", ms[0].R1, ms[1].R1)
	row("robustness R2 = 1/α", ms[0].R2, ms[1].R2)

	// The paper's combined score, emphasizing robustness (r = 0.25).
	p := robsched.OverallPerformance(0.25,
		ms[1].MeanMakespan, ms[0].MeanMakespan, ms[1].R1, ms[0].R1)
	fmt.Printf("\noverall performance P(s) of the GA schedule at r=0.25: %+.4f (positive favors the GA)\n", p)
}

// describe prints a schedule in the paper's notation with its analysis and
// Gantt chart.
func describe(s *robsched.Schedule) {
	fmt.Printf("schedule:  %v\n", s)
	fmt.Printf("makespan:  %.2f   avg slack: %.2f   critical tasks: %v\n",
		s.Makespan(), s.AvgSlack(), onesBased(s.CriticalTasks()))
	fmt.Printf("per-task slack:")
	for v := 0; v < 8; v++ {
		fmt.Printf("  v%d=%.1f", v+1, s.Slack(v))
	}
	fmt.Println()
	fmt.Print(s.Gantt(72))
	fmt.Println()
}

func onesBased(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + 1
	}
	return out
}
