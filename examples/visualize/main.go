// Visualize produces the library's SVG artifacts for one workload into
// ./viz-out: the HEFT and robust-GA Gantt charts (with slack windows
// shaded), the NSGA-II Pareto front as a line chart, and the two schedules'
// makespan histograms with M0/p95 markers — everything needed to *see* the
// robustness trade-off without any plotting stack.
//
// Run with:
//
//	go run ./examples/visualize
//	open viz-out/*.svg
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"robsched"
)

func main() {
	outDir := "viz-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}

	p := robsched.PaperWorkloadParams()
	p.N, p.M = 40, 4
	p.MeanUL = 4
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(5))
	if err != nil {
		log.Fatal(err)
	}
	heft, err := robsched.HEFT(w)
	if err != nil {
		log.Fatal(err)
	}
	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
	opt.MaxGenerations = 250
	opt.Stagnation = 50
	res, err := robsched.Solve(w, opt, robsched.NewRNG(6))
	if err != nil {
		log.Fatal(err)
	}
	ga := res.Schedule

	// Gantt charts with slack windows.
	write("gantt_heft.svg", robsched.GanttSVG(heft, robsched.GanttOptions{
		Title: "HEFT — tight, little slack", ShowSlack: true}))
	write("gantt_robust.svg", robsched.GanttSVG(ga, robsched.GanttOptions{
		Title: "robust GA (ε = 1.4) — slack windows shaded", ShowSlack: true}))

	// The Pareto front.
	popt := robsched.PaperParetoOptions()
	popt.MaxGenerations = 120
	front, err := robsched.SolvePareto(w, popt, robsched.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	fx := make([]float64, len(front))
	fy := make([]float64, len(front))
	for i, pt := range front {
		fx[i], fy[i] = pt.Makespan, pt.Slack
	}
	write("pareto_front.svg", robsched.LineChartSVG(
		[]robsched.VizSeries{
			{Name: "NSGA-II front", X: fx, Y: fy},
			{Name: "HEFT", X: []float64{heft.Makespan()}, Y: []float64{heft.AvgSlack()}},
			{Name: "ε-GA (1.4)", X: []float64{ga.Makespan()}, Y: []float64{ga.AvgSlack()}},
		},
		robsched.ChartOptions{Title: "makespan–slack trade-off", XLabel: "expected makespan", YLabel: "avg slack"},
	))

	// Makespan distributions with planning markers.
	for _, sc := range []struct {
		name string
		s    *robsched.Schedule
	}{{"heft", heft}, {"robust", ga}} {
		samples, err := robsched.SampleMakespans(sc.s, 3000, robsched.NewRNG(8))
		if err != nil {
			log.Fatal(err)
		}
		m, err := robsched.Evaluate(sc.s, robsched.SimOptions{Realizations: 3000}, robsched.NewRNG(8))
		if err != nil {
			log.Fatal(err)
		}
		write("hist_"+sc.name+".svg", robsched.HistogramSVG(samples, robsched.HistogramOptions{
			Title:   fmt.Sprintf("%s: realized makespan (miss rate %.2f)", sc.name, m.MissRate),
			XLabel:  "makespan",
			Markers: map[string]float64{"M0": m.M0, "p95": m.P95},
		}))
	}
	fmt.Println("\nthe HEFT histogram sits almost entirely right of its M0 marker (it plans")
	fmt.Println("optimistically); the robust schedule's M0 splits its distribution near the middle.")
}
