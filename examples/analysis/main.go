// Analysis contrasts three ways of assessing a schedule's robustness:
//
//  1. Monte-Carlo simulation (the paper's evaluation methodology),
//  2. Clark's analytic moment propagation (no sampling at all), and
//  3. the related-work measures the paper cites — Bölöni & Marinescu's
//     critical components and criticality entropy, Leon et al.'s mean
//     slack, and an England-style distributional distance between two
//     schedules' makespan distributions.
//
// Run with:
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"robsched"
)

func main() {
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 50, 4
	p.MeanUL = 4
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(21))
	if err != nil {
		log.Fatal(err)
	}

	heft, err := robsched.HEFT(w)
	if err != nil {
		log.Fatal(err)
	}
	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
	opt.MaxGenerations = 300
	opt.Stagnation = 60
	res, err := robsched.Solve(w, opt, robsched.NewRNG(22))
	if err != nil {
		log.Fatal(err)
	}
	ga := res.Schedule

	fmt.Println("=== 1. Monte-Carlo vs 2. Clark's analytic estimate ===")
	fmt.Printf("%-14s %12s %12s %12s %12s %12s\n", "schedule", "MC mean", "Clark mean", "MC std", "Clark std", "Clark p95")
	for _, sc := range []struct {
		name string
		s    *robsched.Schedule
	}{{"HEFT", heft}, {"robust GA", ga}} {
		mc, err := robsched.Evaluate(sc.s, robsched.SimOptions{Realizations: 2000}, robsched.NewRNG(23))
		if err != nil {
			log.Fatal(err)
		}
		an := robsched.AnalyzeClark(sc.s)
		fmt.Printf("%-14s %12.1f %12.1f %12.1f %12.1f %12.1f\n",
			sc.name, mc.MeanMakespan, an.Makespan.Mean, mc.StdMakespan, an.Makespan.Std(), an.Quantile(0.95))
	}
	fmt.Println("(Clark's independence assumption biases the mean high and the std low —")
	fmt.Println(" useful for fast screening, not a simulation replacement.)")

	fmt.Println("\n=== 3. Related-work robustness measures ===")
	fmt.Printf("%-14s %10s %10s %10s %10s %10s\n", "schedule", "critical", "entropy", "meanSlack", "R1", "R2")
	for _, sc := range []struct {
		name string
		s    *robsched.Schedule
	}{{"HEFT", heft}, {"robust GA", ga}} {
		rep, err := robsched.MeasureRobustness(sc.s, 500, robsched.NewRNG(24))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10d %10.3f %10.2f %10.2f %10.2f\n",
			sc.name, rep.CriticalComponents, rep.Entropy, rep.MeanSlack, rep.Metrics.R1, rep.Metrics.R2)
	}
	fmt.Println("(lower entropy: criticality concentrates on one stable, padded path —")
	fmt.Println(" Bölöni & Marinescu's signature of a robust schedule.)")

	// England-style distributional distance: how differently do the two
	// schedules behave, and how stable is each against itself?
	a1, err := robsched.SampleMakespans(heft, 2000, robsched.NewRNG(25))
	if err != nil {
		log.Fatal(err)
	}
	a2, err := robsched.SampleMakespans(heft, 2000, robsched.NewRNG(26))
	if err != nil {
		log.Fatal(err)
	}
	b1, err := robsched.SampleMakespans(ga, 2000, robsched.NewRNG(27))
	if err != nil {
		log.Fatal(err)
	}
	selfD, _ := robsched.KSDistance(a1, a2)
	crossD, _ := robsched.KSDistance(a1, b1)
	fmt.Printf("\nKolmogorov–Smirnov distances: HEFT vs itself %.3f, HEFT vs GA %.3f\n", selfD, crossD)

	// Where does the risk live? The five most criticality-prone tasks.
	probs, err := robsched.CriticalityProbabilities(ga, 500, robsched.NewRNG(28))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost criticality-prone tasks of the GA schedule:")
	for rank := 0; rank < 5; rank++ {
		best := -1
		for v, p := range probs {
			if best < 0 || p > probs[best] {
				best = v
			}
		}
		fmt.Printf("  v%-3d critical in %4.0f%% of realizations (slack %.1f)\n",
			best+1, probs[best]*100, ga.Slack(best))
		probs[best] = -1
	}
}
