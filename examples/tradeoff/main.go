// Tradeoff sweeps the ε parameter of the bi-objective scheduler across one
// workload and prints the makespan–robustness frontier: how much expected
// makespan must be sacrificed to buy slack, and how much robustness that
// slack purchases. This is the paper's ε-constraint method (Section 4.1)
// seen from a user's perspective.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"robsched"
)

func main() {
	// One 60-task, 6-processor workload with heavy uncertainty (UL = 6).
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 60, 6
	p.MeanUL = 6
	r := robsched.NewRNG(99)
	w, err := robsched.GenerateWorkload(p, r)
	if err != nil {
		log.Fatal(err)
	}

	heft, err := robsched.HEFT(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks, %d processors, mean UL %.1f\n", w.N(), w.M(), p.MeanUL)
	fmt.Printf("HEFT: M0 = %.1f, avg slack = %.2f\n\n", heft.Makespan(), heft.AvgSlack())

	epsGrid := []float64{1.0, 1.1, 1.2, 1.4, 1.6, 1.8, 2.0}
	schedules := []*robsched.Schedule{heft}
	for _, eps := range epsGrid {
		opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, eps)
		opt.MaxGenerations = 300
		opt.Stagnation = 60
		res, err := robsched.Solve(w, opt, robsched.NewRNG(uint64(eps*1000)))
		if err != nil {
			log.Fatal(err)
		}
		schedules = append(schedules, res.Schedule)
	}

	// Common random numbers across the whole frontier.
	ms, err := robsched.EvaluateAll(schedules, robsched.SimOptions{Realizations: 1000}, robsched.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s\n",
		"eps", "M0", "M0/MHEFT", "slack", "E[δ]", "R1", "R2")
	print := func(name string, m robsched.SimMetrics, slack float64) {
		fmt.Printf("%-8s %10.1f %10.3f %10.2f %10.4f %10.2f %10.2f\n",
			name, m.M0, m.M0/heft.Makespan(), slack, m.MeanTardiness, m.R1, m.R2)
	}
	print("HEFT", ms[0], heft.AvgSlack())
	for i, eps := range epsGrid {
		print(fmt.Sprintf("%.1f", eps), ms[i+1], schedules[i+1].AvgSlack())
	}

	// Pick the best ε for three user profiles via Eqn. 9.
	fmt.Println("\nbest ε by user profile (overall performance, Eqn. 9):")
	for _, rWeight := range []float64{0.1, 0.5, 0.9} {
		bestEps, bestP := 0.0, -1e18
		for i, eps := range epsGrid {
			p := robsched.OverallPerformance(rWeight,
				ms[i+1].MeanMakespan, ms[0].MeanMakespan, ms[i+1].R1, ms[0].R1)
			if p > bestP {
				bestP, bestEps = p, eps
			}
		}
		fmt.Printf("  r = %.1f (%s): ε = %.1f  (P = %+.4f)\n",
			rWeight, profile(rWeight), bestEps, bestP)
	}
}

func profile(r float64) string {
	switch {
	case r < 0.3:
		return "robustness first"
	case r > 0.7:
		return "makespan first"
	default:
		return "balanced"
	}
}
