// Workflows schedules four structured scientific workloads — Gaussian
// elimination, an FFT butterfly, a fork-join ensemble and a pipeline
// stencil — with HEFT and with the robust GA, showing how the
// robustness/makespan trade-off depends on graph structure: wide graphs
// offer slack cheaply, while tight chains (stencil, Gauss) make robustness
// expensive.
//
// Run with:
//
//	go run ./examples/workflows
package main

import (
	"fmt"
	"log"

	"robsched"
)

func main() {
	type workload struct {
		name string
		g    *robsched.Graph
	}
	ws := []workload{
		{"gauss(7)", must(robsched.GaussianElimination(7, 4))},
		{"fft(4)", must(robsched.FFT(4, 4))},
		{"forkjoin(8x3)", must(robsched.ForkJoin(8, 3, 4))},
		{"stencil(6x6)", must(robsched.Stencil(6, 6, 4))},
	}

	fmt.Printf("%-14s %6s %6s | %10s %10s | %10s %10s | %8s\n",
		"workload", "tasks", "edges", "M0 heft", "M0 ga", "R1 heft", "R1 ga", "ga/heft")
	for i, wl := range ws {
		r := robsched.NewRNG(uint64(100 + i))
		exec := robsched.ExecMatrix(wl.g.N(), 6, 12, 0.5, 0.5, r)
		ul := robsched.ULMatrix(wl.g.N(), 6, 4, 0.5, 0.5, r)
		w, err := robsched.NewWorkload(wl.g, robsched.UniformSystem(6, 1), exec, ul)
		if err != nil {
			log.Fatal(err)
		}
		heft, err := robsched.HEFT(w)
		if err != nil {
			log.Fatal(err)
		}
		opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.3)
		opt.MaxGenerations = 250
		opt.Stagnation = 50
		res, err := robsched.Solve(w, opt, r)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := robsched.EvaluateAll(
			[]*robsched.Schedule{heft, res.Schedule},
			robsched.SimOptions{Realizations: 800}, robsched.NewRNG(uint64(i)))
		if err != nil {
			log.Fatal(err)
		}
		ratio := ms[1].R1 / ms[0].R1
		fmt.Printf("%-14s %6d %6d | %10.1f %10.1f | %10.2f %10.2f | %8.2fx\n",
			wl.name, wl.g.N(), wl.g.EdgeCount(),
			ms[0].M0, ms[1].M0, ms[0].R1, ms[1].R1, ratio)
	}
	fmt.Println("\nga/heft is the robustness (R1) multiplier the GA buys within a 1.3× makespan budget.")
}

func must(g *robsched.Graph, err error) *robsched.Graph {
	if err != nil {
		log.Fatal(err)
	}
	return g
}
