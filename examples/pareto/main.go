// Pareto computes the full makespan–slack Pareto front of one workload
// with NSGA-II and situates three other schedulers on it: HEFT, the
// paper's ε-constraint GA, and the dynamic online dispatcher. It then
// Monte-Carlo evaluates a spread of front points to show how position on
// the front translates into realized robustness.
//
// Run with:
//
//	go run ./examples/pareto
package main

import (
	"fmt"
	"log"

	"robsched"
)

func main() {
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 60, 6
	p.MeanUL = 4
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}

	heft, err := robsched.HEFT(w)
	if err != nil {
		log.Fatal(err)
	}

	popt := robsched.PaperParetoOptions()
	popt.MaxGenerations = 150
	front, err := robsched.SolvePareto(w, popt, robsched.NewRNG(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NSGA-II front: %d non-dominated schedules\n", len(front))
	fmt.Printf("%-8s %12s %12s\n", "point", "makespan", "avg slack")
	step := 1
	if len(front) > 12 {
		step = len(front) / 12
	}
	for i := 0; i < len(front); i += step {
		fmt.Printf("#%-7d %12.1f %12.2f\n", i, front[i].Makespan, front[i].Slack)
	}

	// Front quality: hypervolume against a reference box anchored at twice
	// HEFT's makespan and zero slack (minimize makespan, minimize -slack).
	objs := make([][]float64, len(front))
	for i, pt := range front {
		objs[i] = []float64{pt.Makespan, -pt.Slack}
	}
	ref := [2]float64{2 * heft.Makespan(), 0}
	fmt.Printf("\nhypervolume (ref 2·M_HEFT, slack 0): %.4g\n", robsched.Hypervolume2D(objs, ref))

	// Situate the single-point methods against the front.
	eres, err := robsched.Solve(w, robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4), robsched.NewRNG(13))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-point schedulers on the (makespan, slack) plane:\n")
	fmt.Printf("  HEFT:               (%8.1f, %8.2f)\n", heft.Makespan(), heft.AvgSlack())
	fmt.Printf("  ε-constraint (1.4): (%8.1f, %8.2f)\n", eres.Schedule.Makespan(), eres.Schedule.AvgSlack())

	// Monte-Carlo a spread of front points plus the dynamic baseline.
	lo, mid, hi := front[0], front[len(front)/2], front[len(front)-1]
	ms, err := robsched.EvaluateAll(
		[]*robsched.Schedule{lo.Schedule, mid.Schedule, hi.Schedule, heft},
		robsched.SimOptions{Realizations: 800}, robsched.NewRNG(17))
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := robsched.EvaluateDynamic(w, robsched.SimOptions{Realizations: 800}, robsched.NewRNG(17))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrealized robustness of front extremes vs baselines (800 realizations):\n")
	fmt.Printf("%-16s %10s %10s %10s %10s %10s\n", "schedule", "M0", "mean", "p95", "R1", "R2")
	row := func(name string, m robsched.SimMetrics) {
		fmt.Printf("%-16s %10.1f %10.1f %10.1f %10.2f %10.2f\n",
			name, m.M0, m.MeanMakespan, m.P95, m.R1, m.R2)
	}
	row("front: fastest", ms[0])
	row("front: middle", ms[1])
	row("front: slackest", ms[2])
	row("HEFT (static)", ms[3])
	row("dynamic (online)", dyn)
	fmt.Println("\nmoving right along the front buys robustness (R1, R2) with expected makespan;")
	fmt.Println("the online dispatcher needs no slack but re-decides at run time instead.")
}
