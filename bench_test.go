package robsched_test

// One benchmark per figure of the paper's evaluation, plus ablation
// benches for the design choices called out in DESIGN.md. Each figure
// bench runs the corresponding experiment end to end at a reduced scale —
// `go test -bench Fig -benchmem` regenerates every figure's pipeline; the
// full-scale tables come from `go run ./cmd/experiments`.

import (
	"fmt"
	"io"
	"testing"

	"robsched"
	"robsched/internal/obs"
)

// benchConfig is the reduced scale used by the figure benchmarks.
func benchConfig() robsched.ExperimentConfig {
	cfg := robsched.DefaultExperimentConfig()
	cfg.Gen.N = 30
	cfg.Gen.M = 4
	cfg.Graphs = 2
	cfg.Realizations = 100
	cfg.ULs = []float64{2, 8}
	cfg.Eps = []float64{1.0, 1.5, 2.0}
	cfg.GA.PopSize = 10
	cfg.GA.MaxGenerations = 30
	cfg.GA.Stagnation = 0
	cfg.TraceEvery = 10
	return cfg
}

func benchWorkload(b *testing.B, n, m int, ul float64) *robsched.Workload {
	b.Helper()
	p := robsched.PaperWorkloadParams()
	p.N, p.M, p.MeanUL = n, m, ul
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkFig2MinMakespanTrace regenerates Fig. 2: the evolution of
// makespan, slack and R1 when a GA minimizes the makespan.
func BenchmarkFig2MinMakespanTrace(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.EvolutionTrace(robsched.MinMakespan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3MaxSlackTrace regenerates Fig. 3: the same trajectories when
// the GA maximizes slack.
func BenchmarkFig3MaxSlackTrace(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.EvolutionTrace(robsched.MaxSlack); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SweepAndImprovement regenerates Fig. 4: the UL×ε sweep plus
// the improvement-over-HEFT table at ε = 1.0.
func BenchmarkFig4SweepAndImprovement(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sw, err := cfg.RunSweep()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sw.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepForFigs is shared by the Fig. 5–8 benchmarks, which post-process the
// same sweep exactly as the paper reuses one set of runs.
func sweepForFigs(b *testing.B) *robsched.Sweep {
	b.Helper()
	cfg := benchConfig()
	sw, err := cfg.RunSweep()
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

// BenchmarkFig5R1EpsImprovement regenerates Fig. 5 from a prepared sweep.
func BenchmarkFig5R1EpsImprovement(b *testing.B) {
	sw := sweepForFigs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.FigEpsImprovement(robsched.MetricR1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6R2EpsImprovement regenerates Fig. 6 from a prepared sweep.
func BenchmarkFig6R2EpsImprovement(b *testing.B) {
	sw := sweepForFigs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.FigEpsImprovement(robsched.MetricR2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7BestEpsR1 regenerates Fig. 7 from a prepared sweep.
func BenchmarkFig7BestEpsR1(b *testing.B) {
	sw := sweepForFigs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.FigBestEps(robsched.MetricR1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8BestEpsR2 regenerates Fig. 8 from a prepared sweep.
func BenchmarkFig8BestEpsR2(b *testing.B) {
	sw := sweepForFigs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.FigBestEps(robsched.MetricR2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveEpsilonConstraint times one full GA run at the paper's
// problem size (100 tasks, 8 processors) with a shortened horizon.
func BenchmarkSolveEpsilonConstraint(b *testing.B) {
	w := benchWorkload(b, 100, 8, 4)
	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
	opt.MaxGenerations = 50
	opt.Stagnation = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := robsched.Solve(w, opt, robsched.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloPaperScale times the paper's 1000-realization
// evaluation of one 100-task schedule.
func BenchmarkMonteCarloPaperScale(b *testing.B) {
	w := benchWorkload(b, 100, 8, 4)
	s, err := robsched.HEFT(w)
	if err != nil {
		b.Fatal(err)
	}
	opt := robsched.PaperSimOptions()
	r := robsched.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := robsched.Evaluate(s, opt, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHEFTSeed compares GA convergence machinery with and
// without the HEFT seed chromosome (DESIGN.md ablation).
func BenchmarkAblationHEFTSeed(b *testing.B) {
	w := benchWorkload(b, 50, 4, 4)
	for _, seeded := range []bool{true, false} {
		name := "seeded"
		if !seeded {
			name = "unseeded"
		}
		b.Run(name, func(b *testing.B) {
			opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
			opt.MaxGenerations = 40
			opt.Stagnation = 0
			opt.NoHEFTSeed = !seeded
			for i := 0; i < b.N; i++ {
				if _, err := robsched.Solve(w, opt, robsched.NewRNG(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInsertionPolicy compares HEFT's insertion-based slot
// search against the append-only policy (DESIGN.md ablation).
func BenchmarkAblationInsertionPolicy(b *testing.B) {
	w := benchWorkload(b, 100, 8, 2)
	b.Run("insertion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := robsched.HEFT(w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := robsched.HEFTNoInsertion(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRiskFactor sweeps the variance-aware HEFT's risk factor
// (the paper's future-work dial) and reports the realized tardiness next
// to the timing — run with -v to see the printed effect.
func BenchmarkAblationRiskFactor(b *testing.B) {
	w := benchWorkload(b, 60, 4, 6)
	for _, k := range []float64{0, 1, 2} {
		b.Run(fmt.Sprintf("k=%g", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := robsched.RiskHEFT(w, k)
				if err != nil {
					b.Fatal(err)
				}
				m, err := robsched.Evaluate(s, robsched.SimOptions{Realizations: 200}, robsched.NewRNG(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.MeanTardiness, "tardiness")
			}
		})
	}
}

// BenchmarkNSGA2Front times the NSGA-II front solver at a moderate size.
func BenchmarkNSGA2Front(b *testing.B) {
	w := benchWorkload(b, 50, 4, 4)
	opt := robsched.PaperParetoOptions()
	opt.MaxGenerations = 40
	for i := 0; i < b.N; i++ {
		if _, err := robsched.SolvePareto(w, opt, robsched.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicDispatch times the online dispatcher's Monte-Carlo
// evaluation at the paper's problem size.
func BenchmarkDynamicDispatch(b *testing.B) {
	w := benchWorkload(b, 100, 8, 4)
	for i := 0; i < b.N; i++ {
		if _, err := robsched.EvaluateDynamic(w, robsched.SimOptions{Realizations: 200}, robsched.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1WorkedExample regenerates the Fig. 1 walkthrough (graph,
// schedule, Gantt, disjunctive graph) — cheap, exercised mostly for the
// per-figure completeness of this harness.
func BenchmarkFig1WorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := robsched.Fig1WorkedExample(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIslandGA compares single-population vs 4-island runs of the
// ε-constraint GA at a fixed total generation budget.
func BenchmarkIslandGA(b *testing.B) {
	w := benchWorkload(b, 60, 4, 4)
	for _, islands := range []int{1, 4} {
		b.Run(fmt.Sprintf("islands=%d", islands), func(b *testing.B) {
			opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
			opt.MaxGenerations = 60
			opt.Stagnation = 0
			opt.Islands = islands
			opt.MigrationEvery = 15
			for i := 0; i < b.N; i++ {
				res, err := robsched.Solve(w, opt, robsched.NewRNG(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Schedule.AvgSlack(), "slack")
			}
		})
	}
}

// BenchmarkListSchedulers times every deterministic scheduler at the
// paper's problem size.
func BenchmarkListSchedulers(b *testing.B) {
	w := benchWorkload(b, 100, 8, 4)
	for _, sc := range []struct {
		name string
		run  func() (*robsched.Schedule, error)
	}{
		{"heft", func() (*robsched.Schedule, error) { return robsched.HEFT(w) }},
		{"cpop", func() (*robsched.Schedule, error) { return robsched.CPOP(w) }},
		{"peft", func() (*robsched.Schedule, error) { return robsched.PEFT(w) }},
		{"minmin", func() (*robsched.Schedule, error) { return robsched.BatchSchedule(w, robsched.MinMin) }},
		{"maxmin", func() (*robsched.Schedule, error) { return robsched.BatchSchedule(w, robsched.MaxMin) }},
		{"risk-heft", func() (*robsched.Schedule, error) { return robsched.RiskHEFT(w, 1) }},
	} {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sc.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSlackMetric compares the paper's average-slack surrogate
// against the min-slack extension (DESIGN.md ablation).
func BenchmarkAblationSlackMetric(b *testing.B) {
	w := benchWorkload(b, 50, 4, 4)
	for _, metric := range []struct {
		name string
		m    robsched.SlackMetric
	}{{"avg", robsched.AvgSlackMetric}, {"min", robsched.MinSlackMetric}} {
		b.Run(metric.name, func(b *testing.B) {
			opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
			opt.MaxGenerations = 40
			opt.Stagnation = 0
			opt.SlackMetric = metric.m
			for i := 0; i < b.N; i++ {
				if _, err := robsched.Solve(w, opt, robsched.NewRNG(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolvePaper times the full paper-scale ε-constraint solve (100
// tasks, 8 processors, Np=20, the full 1000-generation horizon with the
// stagnation window disabled so every run does identical work). This is the
// headline number of the BENCH_ga.json lane; the nocache variant isolates
// what the genotype→metrics cache is worth on top of the engine arenas, and
// the nodelta variant (cache on, delta decoding off) isolates the
// incremental suffix re-evaluation — all three produce bit-identical
// results. Workers=1 keeps the number a single-core figure.
func BenchmarkSolvePaper(b *testing.B) {
	w := benchWorkload(b, 100, 8, 4)
	run := func(b *testing.B, noCache, noDelta bool) {
		opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
		opt.MaxGenerations = 1000
		opt.Stagnation = 0
		opt.Workers = 1
		opt.NoMetricsCache = noCache
		opt.NoDeltaDecode = noDelta
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := robsched.Solve(w, opt, robsched.NewRNG(7)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cache", func(b *testing.B) { run(b, false, false) })
	b.Run("nocache", func(b *testing.B) { run(b, true, false) })
	b.Run("nodelta", func(b *testing.B) { run(b, false, true) })
}

// BenchmarkSolveObs measures the end-to-end observability overhead on a
// reduced solve (100 generations): "off" is the plain run — its ns/op and
// allocs/op must stay within noise of a build without the obs package at
// all — and "on" attaches the registry plus a JSONL tracer writing to
// io.Discard. Tracked in BENCH_obs.json via bench.sh.
func BenchmarkSolveObs(b *testing.B) {
	w := benchWorkload(b, 100, 8, 4)
	run := func(b *testing.B, instrument bool) {
		opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.4)
		opt.MaxGenerations = 100
		opt.Stagnation = 0
		opt.Workers = 1
		if instrument {
			opt.Obs = obs.NewRegistry()
			opt.Trace = obs.NewTracer(io.Discard, 64)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := robsched.Solve(w, opt, robsched.NewRNG(7)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
