package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"robsched/internal/wio"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenWorkloads pins the exact JSON dagen emits for one random and
// one structured graph at fixed seeds. Refresh with:
// go test ./cmd/dagen -update
func TestGoldenWorkloads(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"random", []string{"-kind", "random", "-n", "15", "-m", "3", "-seed", "3"}},
		{"gauss", []string{"-kind", "gauss", "-k", "4", "-m", "3", "-seed", "7"}},
		{"montage", []string{"-shape", "montage", "-width", "4", "-m", "3", "-seed", "9"}},
		{"epigenomics", []string{"-shape", "epigenomics", "-width", "4", "-m", "3", "-seed", "9"}},
		{"cybershake", []string{"-shape", "cybershake", "-width", "5", "-m", "3", "-seed", "9"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if err := run(tc.args, &out, &errb); err != nil {
				t.Fatalf("run: %v\nstderr:\n%s", err, errb.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (refresh with -update)", golden)
			}
			// The golden bytes must round-trip as a loadable workload.
			w, err := wio.ReadWorkload(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("emitted workload does not parse: %v", err)
			}
			if w.N() == 0 || w.M() != 3 {
				t.Errorf("parsed workload has %d tasks, %d processors", w.N(), w.M())
			}
		})
	}
}

// TestDagenDeterministic re-runs a generation and requires identical bytes.
func TestDagenDeterministic(t *testing.T) {
	gen := func() string {
		var out, errb bytes.Buffer
		if err := run([]string{"-kind", "fft", "-stages", "3", "-m", "4", "-seed", "11"}, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Error("two identical invocations produced different workloads")
	}
}

// TestDagenOutAndDot checks the file outputs: -out writes the workload
// (with a note on stderr) and -dot writes a Graphviz file.
func TestDagenOutAndDot(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "w.json")
	dotPath := filepath.Join(dir, "w.dot")
	var out, errb bytes.Buffer
	err := run([]string{"-kind", "forkjoin", "-width", "3", "-stages", "2", "-m", "2", "-seed", "5",
		"-out", outPath, "-dot", dotPath}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty with -out: %q", out.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := wio.ReadWorkload(f); err != nil {
		t.Fatalf("-out file does not parse: %v", err)
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(dot, []byte("digraph")) {
		t.Error("-dot file is not a Graphviz digraph")
	}
}

func TestDagenBadKind(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-kind", "nope"}, &out, &errb)
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if want := fmt.Sprintf("unknown -kind %q", "nope"); err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
}

// TestDagenShapeFlag covers the overloaded -shape: numeric values remain the
// random kind's α, workflow family names build the family, anything else
// (or a family combined with a structured -kind) is rejected.
func TestDagenShapeFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-n", "12", "-m", "2", "-shape", "0.5", "-seed", "2"}, &out, &errb); err != nil {
		t.Fatalf("numeric -shape rejected: %v", err)
	}
	if _, err := wio.ReadWorkload(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("numeric -shape output does not parse: %v", err)
	}
	if err := run([]string{"-shape", "pegasus"}, &out, &errb); err == nil {
		t.Error("unknown workflow family accepted")
	}
	if err := run([]string{"-kind", "gauss", "-shape", "montage"}, &out, &errb); err == nil {
		t.Error("workflow -shape with structured -kind accepted")
	}
}
