// Command dagen generates workload instances: random layered DAGs with the
// paper's parameters, structured graphs (Gaussian elimination, FFT,
// fork-join, stencil), or scientific-workflow shapes (Montage, Epigenomics,
// CyberShake), written as JSON workloads and optionally as Graphviz DOT.
//
// Examples:
//
//	dagen -n 100 -m 8 -ul 4 -out w.json
//	dagen -kind gauss -k 6 -m 4 -out gauss.json -dot gauss.dot
//	dagen -kind fft -stages 4 -m 8 -out fft.json
//	dagen -shape montage -width 8 -m 4 -out montage.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"robsched/internal/dag"
	"robsched/internal/gen"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/wio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dagen:", err)
		os.Exit(1)
	}
}

// run parses flags from args into a private FlagSet and writes the workload
// to stdout (or -out), keeping the command testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "random", "graph kind: random, gauss, fft, forkjoin, stencil, outtree, intree, seriesparallel, paper-example")
		n      = fs.Int("n", 100, "tasks (random kind)")
		m      = fs.Int("m", 8, "processors")
		k      = fs.Int("k", 6, "matrix size (gauss kind)")
		stages = fs.Int("stages", 3, "stages (fft / forkjoin kinds)")
		width  = fs.Int("width", 4, "width (forkjoin / stencil kinds)")
		depth  = fs.Int("depth", 4, "depth (stencil kind)")
		seed   = fs.Uint64("seed", 1, "random seed")
		meanUL = fs.Float64("ul", 2.0, "mean uncertainty level")
		cc     = fs.Float64("cc", 20, "average computation cost")
		ccr    = fs.Float64("ccr", 0.1, "communication-to-computation ratio")
		shape  = fs.String("shape", "1.0", "graph shape α (random kind), or a workflow family: montage, epigenomics, cybershake (uses -width)")
		vtask  = fs.Float64("vtask", 0.5, "task heterogeneity COV")
		vmach  = fs.Float64("vmach", 0.5, "machine heterogeneity COV")
		outP   = fs.String("out", "", "output workload JSON path (stdout when empty)")
		dotP   = fs.String("dot", "", "also write the graph as Graphviz DOT to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := rng.New(*seed)
	p := gen.PaperParams()
	p.N, p.M = *n, *m
	p.MeanUL, p.CC, p.CCR = *meanUL, *cc, *ccr
	p.VTask, p.VMach = *vtask, *vmach

	var (
		w        *platform.Workload
		g        *dag.Graph
		err      error
		kindName = *kind
	)
	if alpha, ferr := strconv.ParseFloat(*shape, 64); ferr == nil {
		p.Shape = alpha // numeric -shape is the random kind's α, as before
	} else if *kind != "random" {
		return fmt.Errorf("-shape %q names a workflow family and conflicts with -kind %q", *shape, *kind)
	} else {
		// A non-numeric -shape selects a scientific-workflow family, which
		// builds the whole workload (graph, edge data and cost matrices
		// follow the family's per-stage profiles) at parallel width -width.
		w, _, err = gen.WorkflowByName(*shape, *width, p, r)
		if err != nil {
			return err
		}
		g = w.G
		kindName = *shape
	}
	if w == nil {
		commData := *cc * *ccr // uniform edge data for structured graphs
		switch *kind {
		case "random":
			g, err = gen.RandomGraph(p, r)
		case "gauss":
			g, err = gen.GaussianElimination(*k, commData)
		case "fft":
			g, err = gen.FFT(*stages, commData)
		case "forkjoin":
			g, err = gen.ForkJoin(*width, *stages, commData)
		case "stencil":
			g, err = gen.Stencil(*width, *depth, commData)
		case "outtree":
			g, err = gen.OutTree(*n, *width, commData, r)
		case "intree":
			g, err = gen.InTree(*n, *width, commData, r)
		case "seriesparallel":
			g, err = gen.SeriesParallel(*n, commData, r)
		case "paper-example":
			g = gen.PaperExampleGraph(commData)
		default:
			return fmt.Errorf("unknown -kind %q", *kind)
		}
		if err != nil {
			return err
		}

		bcet := gen.ExecMatrix(g.N(), *m, *cc, *vtask, *vmach, r)
		ul := gen.ULMatrix(g.N(), *m, *meanUL, p.V1, p.V2, r)
		w, err = platform.NewWorkload(g, platform.UniformSystem(*m, p.Rate), bcet, ul)
		if err != nil {
			return err
		}
	}

	out := stdout
	if *outP != "" {
		f, err := os.Create(*outP)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := wio.WriteWorkload(out, w); err != nil {
		return err
	}
	if *outP != "" {
		fmt.Fprintf(stderr, "dagen: %s workload with %d tasks, %d edges, %d processors -> %s\n",
			kindName, g.N(), g.EdgeCount(), *m, *outP)
	}
	if *dotP != "" {
		if err := os.WriteFile(*dotP, []byte(g.Dot(kindName)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
