// Command experiments regenerates the figures of the paper's evaluation
// (Section 5) as text tables and optional CSV files.
//
//	Fig. 2  GA minimizing the makespan: evolution of makespan/slack/R1
//	Fig. 3  GA maximizing the slack: the same trajectories
//	Fig. 4  improvement over HEFT at ε = 1.0 versus uncertainty level
//	Fig. 5  R1 improvement over ε = 1.0 across the ε grid
//	Fig. 6  R2 improvement over ε = 1.0 across the ε grid
//	Fig. 7  best ε for overall performance (R1) versus the weight r
//	Fig. 8  best ε for overall performance (R2) versus the weight r
//
// Examples:
//
//	experiments -fig all                 # quick scale, every figure
//	experiments -fig 4 -graphs 30        # more repetitions for Fig. 4
//	experiments -fig all -scale paper    # the published scale (hours!)
//	experiments -fig 5 -csv out/         # also write out/fig5.csv
//	experiments -fig 4 -shards 4         # Monte-Carlo over 4 worker processes
//	experiments -fig 4 -scenario montage-lognormal   # workflow shape + heavy tails
//	experiments -corrgap -scenario epigenomics       # correlated-load robustness gap
//
// `experiments worker` runs the scatter/gather worker loop on stdin/stdout
// (-shards spawns these subprocesses automatically) or, with -listen, on a
// TCP address that a coordinator reaches via -remote.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"robsched/internal/dist"
	"robsched/internal/experiments"
	"robsched/internal/obs"
	"robsched/internal/robust"
	"robsched/internal/scenario"
	"robsched/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		wfs := flag.NewFlagSet("experiments worker", flag.ContinueOnError)
		listen := wfs.String("listen", "", "serve the worker protocol on this TCP `address` (host:port) instead of stdin/stdout")
		if err := wfs.Parse(os.Args[2:]); err != nil {
			return err
		}
		return dist.RunWorker(*listen)
	}
	var (
		fig          = flag.String("fig", "all", "figure to regenerate: 1..8 or all (empty with -ablation set)")
		ablation     = flag.String("ablation", "", "ablation to run instead/in addition: seed, slackmetric, risk, policies, or all")
		sensitivity  = flag.String("sensitivity", "", "sensitivity sweep to run: ccr, shape, procs")
		faultExp     = flag.Bool("faults", false, "run the slack-vs-fault-resilience experiment")
		corrGap      = flag.Bool("corrgap", false, "run the correlated-load robustness-gap experiment: the same schedules under independent vs shared per-processor load at equal marginal variance")
		scenName     = flag.String("scenario", "", "named scenario `family[-model]` (montage-lognormal, cybershake-pareto, random-correlated, ...; see internal/scenario): workload family and duration model for every runner (empty = the paper's path)")
		mtbf         = flag.Float64("mtbf", 2.0, "fault experiment: MTBF per processor in multiples of the HEFT makespan")
		retries      = flag.Int("retries", 2, "fault experiment: max retries per killed task")
		drop         = flag.Float64("drop", 4.0, "fault experiment: drop non-critical tasks starting past this multiple of M0 (0 disables)")
		scale        = flag.String("scale", "quick", "experiment scale: quick or paper")
		seed         = flag.Uint64("seed", 1, "root random seed")
		graphs       = flag.Int("graphs", 0, "override: graphs per data point")
		realizations = flag.Int("realizations", 0, "override: Monte-Carlo realizations")
		gens         = flag.Int("generations", 0, "override: GA generations")
		nTasks       = flag.Int("n", 0, "override: tasks per graph")
		mProcs       = flag.Int("m", 0, "override: processors")
		workers      = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 0, "shard Monte-Carlo evaluation over this many worker processes (0 = in-process); results are bit-identical")
		remote       = flag.String("remote", "", "comma-separated TCP worker `addresses` (each started with `experiments worker -listen`): scatter over the network instead of local subprocesses")
		pipeline     = flag.Int("pipeline", 0, "realization ranges in flight per worker connection; 0 derives the depth from the transport RTT, 1 restores strict request/response")
		workerTO     = flag.Duration("worker-timeout", 0, "with -shards: liveness deadline per worker exchange — a silent worker is declared dead and its range reassigned; also arms worker respawn (0 disables)")
		chaosSeed    = flag.Uint64("chaos", 0, "with -shards: inject seeded transport faults between coordinator and workers as a self-test; results stay bit-identical (0 disables; requires -worker-timeout)")
		csvDir       = flag.String("csv", "", "also write figN.csv files into this directory (plus a manifest.json run record)")
		svgDir       = flag.String("svg", "", "also write figN.svg line charts into this directory")
		obsPath      = flag.String("obs", "", "enable observability: write a JSONL trace to this file and print a telemetry summary")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof, expvar and /debug/obs on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	var (
		reg       *obs.Registry
		tracer    *obs.Tracer
		traceFile *os.File
	)
	if *obsPath != "" {
		f, err := os.Create(*obsPath)
		if err != nil {
			return err
		}
		traceFile = f
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(f, 256)
	}
	if *pprofAddr != "" {
		if reg == nil {
			reg = obs.NewRegistry()
		}
		addr, stop, err := obs.Serve(*pprofAddr, reg)
		if err != nil {
			return err
		}
		defer stop()
		obs.PublishExpvar(reg)
		fmt.Fprintf(os.Stderr, "experiments: pprof serving on http://%s/debug/pprof/\n", addr)
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Default()
	case "paper":
		cfg = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown -scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Obs = reg
	cfg.Trace = tracer
	if *graphs > 0 {
		cfg.Graphs = *graphs
	}
	if *realizations > 0 {
		cfg.Realizations = *realizations
	}
	if *gens > 0 {
		cfg.GA.MaxGenerations = *gens
	}
	if *nTasks > 0 {
		cfg.Gen.N = *nTasks
	}
	if *mProcs > 0 {
		cfg.Gen.M = *mProcs
	}
	if *scenName != "" {
		sc, err := scenario.Lookup(*scenName)
		if err != nil {
			return err
		}
		cfg.Scenario = &sc
	}
	if *shards > 0 && *remote != "" {
		return fmt.Errorf("-shards and -remote are mutually exclusive: local subprocesses or remote TCP workers, not both")
	}
	if *shards > 0 || *remote != "" {
		var (
			spawn    func() (dist.Endpoint, error)
			nworkers int
		)
		if *remote != "" {
			var addrs []string
			for _, a := range strings.Split(*remote, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
			if len(addrs) == 0 {
				return fmt.Errorf("-remote lists no worker addresses")
			}
			spawn = dist.TCPSpawner(addrs, 0)
			nworkers = len(addrs)
		} else {
			exe, err := os.Executable()
			if err != nil {
				return fmt.Errorf("locating executable for workers: %w", err)
			}
			spawn = dist.ProcEndpoint(exe, "worker")
			nworkers = *shards
		}
		if *chaosSeed != 0 {
			if *workerTO <= 0 {
				return fmt.Errorf("-chaos requires -worker-timeout: a stalled link is only unmasked by a deadline")
			}
			spawn = dist.ChaosSpawner(dist.DefaultChaos(*chaosSeed), spawn)
		}
		pool, err := dist.NewSpawnPool(nworkers, spawn)
		if err != nil {
			return err
		}
		defer pool.Close()
		pool.Obs = reg
		if *workerTO > 0 {
			pool.Respawn(spawn, 2*nworkers)
		}
		coord := &dist.Coordinator{
			Pool: pool, Obs: reg, Trace: tracer,
			Timeout: *workerTO, PipelineDepth: *pipeline,
		}
		cfg.Sim = coord.EvaluateAll
	}

	want := map[string]bool{}
	switch {
	case *fig == "all" && (*ablation != "" || *sensitivity != "" || *faultExp || *corrGap):
		// -ablation alone runs only the ablations unless figures are also
		// requested explicitly.
	case *fig == "all":
		for _, f := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
			want[f] = true
		}
	default:
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	wantAbl := map[string]bool{}
	if *ablation != "" {
		if *ablation == "all" {
			for _, a := range []string{"seed", "slackmetric", "risk", "policies", "gaparams"} {
				wantAbl[a] = true
			}
		} else {
			for _, a := range strings.Split(*ablation, ",") {
				wantAbl[strings.TrimSpace(a)] = true
			}
		}
	}

	emit := func(figName, title, xlabel string, series []experiments.Series) error {
		fmt.Print(experiments.FormatSeries(title, xlabel, series))
		fmt.Println()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, "fig"+figName+".csv"))
			if err != nil {
				return err
			}
			if err := experiments.WriteCSV(f, xlabel, series); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			vs := make([]viz.Series, len(series))
			for i, s := range series {
				vs[i] = viz.Series{Name: s.Name, X: s.X, Y: s.Y}
			}
			svg := viz.LineChartSVG(vs, viz.ChartOptions{Title: title, XLabel: xlabel})
			if err := os.WriteFile(filepath.Join(*svgDir, "fig"+figName+".svg"), []byte(svg), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	if want["1"] {
		out, err := experiments.Fig1(*seed)
		if err != nil {
			return err
		}
		fmt.Print(out)
		fmt.Println()
	}
	if want["2"] || want["3"] {
		modes := []struct {
			fig   string
			mode  robust.Mode
			title string
		}{
			{"2", robust.MinMakespan, "Fig. 2 — GA minimizing the makespan: ln ratio vs generation 0"},
			{"3", robust.MaxSlack, "Fig. 3 — GA maximizing the slack: ln ratio vs generation 0"},
		}
		for _, m := range modes {
			if !want[m.fig] {
				continue
			}
			tr, err := cfg.EvolutionTrace(m.mode)
			if err != nil {
				return err
			}
			if err := emit(m.fig, m.title, "step", tr.Series()); err != nil {
				return err
			}
		}
	}
	if want["4"] || want["5"] || want["6"] || want["7"] || want["8"] {
		fmt.Fprintf(os.Stderr, "experiments: running UL×ε sweep (%d ULs × %d ε × %d graphs)...\n",
			len(cfg.ULs), len(cfg.Eps), cfg.Graphs)
		sw, err := cfg.RunSweep()
		if err != nil {
			return err
		}
		if want["4"] {
			s, err := sw.Fig4()
			if err != nil {
				return err
			}
			if err := emit("4", "Fig. 4 — improvement over HEFT at ε = 1.0 (ln ratio)", "UL", s); err != nil {
				return err
			}
		}
		if want["5"] {
			s, err := sw.FigEpsImprovement(experiments.R1)
			if err != nil {
				return err
			}
			if err := emit("5", "Fig. 5 — R1 improvement over ε = 1.0 (relative)", "eps", s); err != nil {
				return err
			}
		}
		if want["6"] {
			s, err := sw.FigEpsImprovement(experiments.R2)
			if err != nil {
				return err
			}
			if err := emit("6", "Fig. 6 — R2 improvement over ε = 1.0 (relative)", "eps", s); err != nil {
				return err
			}
		}
		if want["7"] {
			s, err := sw.FigBestEps(experiments.R1)
			if err != nil {
				return err
			}
			if err := emit("7", "Fig. 7 — best ε for overall performance (R1)", "r", s); err != nil {
				return err
			}
		}
		if want["8"] {
			s, err := sw.FigBestEps(experiments.R2)
			if err != nil {
				return err
			}
			if err := emit("8", "Fig. 8 — best ε for overall performance (R2)", "r", s); err != nil {
				return err
			}
		}
	}
	if len(wantAbl) > 0 {
		type abl struct {
			key, title, xlabel string
			run                func() ([]experiments.Series, error)
		}
		abls := []abl{
			{"seed", "Ablation — HEFT seed in the initial population", "UL", cfg.AblationSeed},
			{"slackmetric", "Ablation — average vs minimum slack surrogate", "UL", cfg.AblationSlackMetric},
			{"risk", "Ablation — risk-adjusted HEFT (E[c]+k·σ): relative change vs plain HEFT", "k",
				func() ([]experiments.Series, error) { return cfg.AblationRiskFactor(nil) }},
			{"policies", "Comparison — static / repair / dynamic / robust-GA realized mean (÷ static HEFT)", "UL",
				func() ([]experiments.Series, error) { return cfg.PolicyComparison(1.4, 0.05) }},
			{"gaparams", "Ablation — GA crossover/mutation rate grid (final slack ÷ pc=0.9,pm=0.1)", "pm",
				func() ([]experiments.Series, error) { return cfg.AblationGAParams(nil, nil) }},
		}
		for _, a := range abls {
			if !wantAbl[a.key] {
				continue
			}
			s, err := a.run()
			if err != nil {
				return err
			}
			if err := emit("abl_"+a.key, a.title, a.xlabel, s); err != nil {
				return err
			}
		}
	}
	if *sensitivity != "" {
		var (
			param experiments.SensitivityParam
			grid  []float64
		)
		switch *sensitivity {
		case "ccr":
			param, grid = experiments.SweepCCR, []float64{0.1, 0.25, 0.5, 1, 2}
		case "shape":
			param, grid = experiments.SweepShape, []float64{0.5, 1, 2, 4}
		case "procs":
			param, grid = experiments.SweepProcs, []float64{2, 4, 8, 16}
		default:
			return fmt.Errorf("unknown -sensitivity %q", *sensitivity)
		}
		s, err := cfg.Sensitivity(param, grid, 1.4)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Sensitivity — GA (ε=1.4) vs HEFT as %s varies (UL=%g)", param, cfg.ULs[0])
		if err := emit("sens_"+*sensitivity, title, param.String(), s); err != nil {
			return err
		}
	}
	if *faultExp {
		fc := experiments.DefaultFaultConfig()
		fc.MTBFFactor = *mtbf
		fc.Policy.Retry.MaxRetries = *retries
		fc.Policy.DropFactor = *drop
		fmt.Fprintf(os.Stderr, "experiments: running fault-resilience experiment (%d graphs, mtbf %g·M0)...\n",
			cfg.Graphs, *mtbf)
		res, err := cfg.FaultResilience(fc)
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		fmt.Println()
	}
	if *corrGap {
		fmt.Fprintf(os.Stderr, "experiments: running correlated-load gap experiment (%d graphs)...\n", cfg.Graphs)
		res, err := cfg.CorrelationGap(experiments.DefaultCorrGapConfig())
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		fmt.Println()
		title := fmt.Sprintf("Correlated vs independent load — mean relative tardiness (family %s)", res.Family)
		if err := emit("corrgap", title, "loadCOV", res.Series()); err != nil {
			return err
		}
	}
	if *csvDir != "" {
		// Every CSV-producing run leaves its provenance next to the data:
		// effective config, seed, source revision and (when observability is
		// on) the final metric snapshot.
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		if err := experiments.WriteManifest(filepath.Join(*csvDir, "manifest.json"), cfg.Manifest(reg)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: manifest written to %s\n", filepath.Join(*csvDir, "manifest.json"))
	}
	if *obsPath != "" {
		tracer.SnapshotRegistry("final", reg)
		if err := tracer.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("\n--- observability ---\n")
		if err := reg.Snapshot().WriteSummary(os.Stdout); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: trace written to %s\n", *obsPath)
	}
	fmt.Fprintf(os.Stderr, "experiments: done in %v (seed %d, %d graphs, %d realizations, %d tasks, %d processors)\n",
		time.Since(start).Round(time.Millisecond), cfg.Seed, cfg.Graphs, cfg.Realizations, cfg.Gen.N, cfg.Gen.M)
	return nil
}
