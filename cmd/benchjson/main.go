// Command benchjson converts `go test -bench` output on stdin into a JSON
// trajectory file: each invocation appends one timestamped run (with every
// parsed benchmark line) to the JSON array in the output file, so successive
// runs of bench.sh accumulate a before/after history. bench.sh maintains one
// trajectory per hot path: BENCH_decode.json for the chromosome-decode
// benchmarks and BENCH_sim.json for the Monte-Carlo realization benchmarks.
//
// Each run records the source commit (git rev-parse --short HEAD, or the
// -commit flag). Re-running a lane on a commit it already recorded replaces
// that entry in place — same (commit, note) key — so iterating on a change
// does not pile up duplicate runs; history across commits is preserved.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

type benchLine struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type run struct {
	Timestamp  string      `json:"timestamp"`
	Note       string      `json:"note,omitempty"`
	Commit     string      `json:"commit,omitempty"`
	Go         string      `json:"go,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchLine `json:"benchmarks"`
}

// headCommit returns the short hash of the working tree's HEAD, or "" when
// git is unavailable (the run is then recorded without dedup).
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	out := flag.String("o", "BENCH_decode.json", "output trajectory file")
	note := flag.String("note", "", "optional label stored with this run")
	commit := flag.String("commit", "", "source commit for this run (default: git rev-parse --short HEAD)")
	flag.Parse()
	if *commit == "" {
		*commit = headCommit()
	}

	cur := run{Timestamp: time.Now().UTC().Format(time.RFC3339), Note: *note, Commit: *commit}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goarch:"):
			// ignored; goos+goarch rarely matter for the trajectory
		case strings.HasPrefix(line, "cpu:"):
			cur.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "go: "):
			cur.Go = strings.TrimSpace(strings.TrimPrefix(line, "go: "))
		case strings.HasPrefix(line, "Benchmark"):
			if bl, ok := parseBench(line); ok {
				cur.Benchmarks = append(cur.Benchmarks, bl)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	var runs []run
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			fatal(fmt.Errorf("existing %s is not a run array: %w", *out, err))
		}
	}
	// Same lane (note) on the same commit: replace in place instead of
	// duplicating, keeping the trajectory one entry per (commit, note).
	replaced := false
	if cur.Commit != "" {
		for i := range runs {
			if runs[i].Commit == cur.Commit && runs[i].Note == cur.Note {
				runs[i] = cur
				replaced = true
				break
			}
		}
	}
	if !replaced {
		runs = append(runs, cur)
	}
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	verb := "recorded"
	if replaced {
		verb = "replaced"
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s %d benchmarks in %s (%d runs total)\n",
		verb, len(cur.Benchmarks), *out, len(runs))
}

// parseBench parses one result line, e.g.
//
//	BenchmarkDecode-8  123456  9876 ns/op  1234 B/op  2 allocs/op
func parseBench(line string) (benchLine, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.Contains(line, "ns/op") {
		return benchLine{}, false
	}
	bl := benchLine{Name: f[0]}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchLine{}, false
	}
	bl.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			bl.NsPerOp = v
		case "B/op":
			bl.BytesPerOp = int64(v)
		case "allocs/op":
			bl.AllocsPerOp = int64(v)
		}
	}
	return bl, bl.NsPerOp > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
