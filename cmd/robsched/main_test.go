package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"robsched/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenArgs is the pinned CLI invocation: a small GA run with a fixed
// seed, a fixed generation budget (stagnation disabled) and one worker, so
// that every line of output — including the telemetry summary, where
// worker claim counts depend on the worker count — is deterministic.
func goldenArgs(tracePath string) []string {
	return []string{
		"-n", "12", "-m", "3", "-seed", "1",
		"-scheduler", "ga", "-generations", "40", "-pop", "12", "-stagnation", "0",
		"-realizations", "200", "-workers", "1",
		"-obs", tracePath,
	}
}

func runGolden(t *testing.T) (stdout string, tracePath string) {
	t.Helper()
	tracePath = filepath.Join(t.TempDir(), "trace.jsonl")
	var out, errb bytes.Buffer
	if err := run(goldenArgs(tracePath), &out, &errb); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errb.String())
	}
	return out.String(), tracePath
}

// TestGoldenGARun pins the complete stdout of a GA run — the comparison
// table, the summary line and the observability block — against
// testdata/ga_run.golden. Refresh with: go test ./cmd/robsched -update
func TestGoldenGARun(t *testing.T) {
	got, _ := runGolden(t)
	golden := filepath.Join("testdata", "ga_run.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (refresh with -update):\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestGoldenGARunDeterministic re-runs the pinned invocation and requires
// bit-identical stdout — the property the golden file depends on.
func TestGoldenGARunDeterministic(t *testing.T) {
	a, _ := runGolden(t)
	b, _ := runGolden(t)
	if a != b {
		t.Error("two identical invocations produced different stdout")
	}
}

// TestTraceMatchesRun parses the JSONL trace of the pinned run and checks
// the final registry snapshot against the run the CLI itself reported:
// exactly the configured GA generations, exactly the configured
// realizations, and internally consistent cache traffic.
func TestTraceMatchesRun(t *testing.T) {
	stdout, tracePath := runGolden(t)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var (
		events, spans int
		genEvents     int
		final         *obs.Snapshot
	)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec obs.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		switch rec.Kind {
		case "event":
			events++
			if rec.Scope == "ga" && rec.Name == "generation" {
				genEvents++
			}
		case "span":
			spans++
		case "snapshot":
			if rec.Name != "final" {
				t.Errorf("unexpected snapshot %q", rec.Name)
			}
			if final != nil {
				t.Error("more than one final snapshot")
			}
			final = rec.Registry
		}
	}
	if final == nil {
		t.Fatal("trace has no final registry snapshot")
	}
	if events == 0 || spans == 0 {
		t.Errorf("trace has %d events / %d spans, want both > 0", events, spans)
	}

	// -generations 40 with -stagnation 0 runs the full budget; the
	// registry only counts post-initialization generations, while the
	// trace also carries the gen-0 event.
	if got := final.Counters["ga.generations"]; got != 40 {
		t.Errorf("ga.generations = %d, want 40", got)
	}
	if genEvents != 41 {
		t.Errorf("ga/generation events = %d, want 41 (gen 0 + 40 generations)", genEvents)
	}
	if got := final.Counters["sim.realizations"]; got != 200 {
		t.Errorf("sim.realizations = %d, want 200", got)
	}
	if got := final.Counters["sim.realize_calls"]; got != 1 {
		t.Errorf("sim.realize_calls = %d, want 1", got)
	}
	if got := final.Counters["sim.schedules"]; got != 2 {
		t.Errorf("sim.schedules = %d, want 2 (chosen + HEFT baseline)", got)
	}
	if hits, misses := final.Counters["cache.hits"], final.Counters["cache.misses"]; hits == 0 || misses == 0 {
		t.Errorf("cache traffic hits=%d misses=%d, want both > 0", hits, misses)
	}

	// The stdout the user saw must agree with the trace: the GA line
	// reports the same generation count the registry recorded.
	if !strings.Contains(stdout, "GA: 40 generations") {
		t.Errorf("stdout does not report the 40 generations the registry counted:\n%s", stdout)
	}
	if !strings.Contains(stdout, "--- observability ---") {
		t.Error("stdout is missing the observability summary block")
	}
}

// TestGoldenScenarioRun pins the complete stdout of a -scenario run — a
// workflow-shaped workload under a heavy-tailed duration model — against
// testdata/scenario_run.golden. Refresh with: go test ./cmd/robsched -update
func TestGoldenScenarioRun(t *testing.T) {
	args := []string{
		"-scenario", "montage-lognormal", "-n", "40", "-m", "3", "-seed", "5",
		"-scheduler", "ga", "-generations", "30", "-pop", "12", "-stagnation", "0",
		"-realizations", "200", "-workers", "1",
	}
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "scenario: montage-lognormal (family montage, durations lognormal)") {
		t.Errorf("stdout does not announce the scenario:\n%s", got)
	}
	golden := filepath.Join("testdata", "scenario_run.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (refresh with -update):\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestRunBadFlags pins that errors surface through the run seam instead of
// exiting the process.
func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scheduler", "nope"}, &out, &errb); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-scenario", "nope-uniform"}, &out, &errb); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-scenario", "montage", "-workload", "w.json"}, &out, &errb); err == nil {
		t.Error("-scenario with -workload accepted")
	}
}
