// Command robsched schedules a DAG workload onto a heterogeneous platform
// and reports makespan, slack and Monte-Carlo robustness next to the HEFT
// baseline.
//
// Usage:
//
//	robsched [flags]
//
// The workload either comes from a JSON file (-workload, see internal/wio
// for the format) or is generated randomly with the paper's generator
// (-n, -m, -ul, -cc, -ccr, -shape, -seed).
//
// Examples:
//
//	robsched -n 100 -m 8 -ul 4 -scheduler ga -eps 1.4
//	robsched -workload w.json -scheduler heft -gantt
//	robsched -scenario montage-lognormal -n 100 -m 8 -scheduler ga
//	robsched -n 50 -scheduler ga -mode maxslack -out schedule.json
//	robsched -n 100 -scheduler ga -shards 4                 # sharded Monte-Carlo
//	robsched -n 100 -scheduler ga -shards 4 -islands 4      # sharded GA islands
//	robsched worker -listen :9444                           # TCP worker (machine B)
//	robsched -n 100 -scheduler ga -remote hostB:9444        # coordinator (machine A)
//
// `robsched worker` is the subcommand behind -shards and -remote: it speaks
// the dist wire protocol on stdin/stdout when spawned by the coordinator,
// or serves it on a TCP listener with -listen for cross-machine runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"robsched/internal/clark"
	"robsched/internal/dist"
	"robsched/internal/fault"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/repair"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/scenario"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/stoch"
	"robsched/internal/viz"
	"robsched/internal/wio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "robsched:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags are parsed from
// args into a private FlagSet and all human-readable output goes to stdout
// (golden-tested) while operational notes (trace path, pprof address) go to
// stderr.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "worker" {
		// The dist worker subcommand: binary frames on stdin/stdout until
		// the coordinator closes the pipe, or — with -listen — a TCP server
		// remote coordinators dial into (-remote). Either way SIGTERM/SIGINT
		// drain gracefully: in-flight work answers before the process exits.
		wfs := flag.NewFlagSet("robsched worker", flag.ContinueOnError)
		wfs.SetOutput(stderr)
		listen := wfs.String("listen", "", "serve the worker protocol on this TCP `address` (host:port; port 0 picks one, printed on stdout) instead of stdin/stdout")
		if err := wfs.Parse(args[1:]); err != nil {
			return err
		}
		return dist.RunWorker(*listen)
	}
	fs := flag.NewFlagSet("robsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadPath = fs.String("workload", "", "JSON workload file (generated randomly when empty)")
		n            = fs.Int("n", 100, "tasks in the generated workload")
		m            = fs.Int("m", 8, "processors in the generated workload")
		seed         = fs.Uint64("seed", 1, "random seed for generation and search")
		meanUL       = fs.Float64("ul", 2.0, "mean uncertainty level of the generated workload")
		cc           = fs.Float64("cc", 20, "average computation cost")
		ccr          = fs.Float64("ccr", 0.1, "communication-to-computation ratio")
		shape        = fs.Float64("shape", 1.0, "graph shape parameter α")
		scenName     = fs.String("scenario", "", "named scenario `family[-model]` (montage-lognormal, cybershake-pareto, random-correlated, ...; see internal/scenario): selects the workload family and the Monte-Carlo duration model (empty = the paper's path)")
		scheduler    = fs.String("scheduler", "ga", "scheduler: heft, heft-noins, risk-heft, cpop, peft, minmin, maxmin, random, ga, weighted, anneal")
		risk         = fs.Float64("risk", 1.0, "risk factor k of risk-heft (durations E[c]+k·σ)")
		weight       = fs.Float64("weight", 0.5, "makespan weight of the weighted-sum scheduler")
		deadline     = fs.Float64("deadline", 0, "also report the miss rate against this deadline (0 disables)")
		mode         = fs.String("mode", "eps", "GA objective: eps, minmakespan, maxslack")
		eps          = fs.Float64("eps", 1.2, "ε of the constraint M0 ≤ ε·M_HEFT")
		pop          = fs.Int("pop", 20, "GA population size")
		gens         = fs.Int("generations", 1000, "GA generation cap")
		stagnation   = fs.Int("stagnation", 100, "GA stagnation window (0 disables)")
		realizations = fs.Int("realizations", 1000, "Monte-Carlo realizations")
		outPath      = fs.String("out", "", "write the resulting schedule as JSON to this file")
		gantt        = fs.Bool("gantt", false, "print a text Gantt chart")
		quiet        = fs.Bool("q", false, "print only the summary line")
		paretoFront  = fs.Bool("pareto", false, "print the NSGA-II makespan–slack front instead of a single schedule")
		repairTheta  = fs.Float64("repair", 0, "also evaluate runtime repair of the schedule at this threshold (0 disables)")
		faults       = fs.String("faults", "", "evaluate under processor faults: 'auto' samples failures/outages from -mtbf, anything else is a scenario JSON file (empty disables)")
		mtbf         = fs.Float64("mtbf", 2.0, "mean time between permanent failures per processor, in multiples of the HEFT makespan (with -faults auto)")
		retries      = fs.Int("retries", 2, "max retries per killed task under -faults (with EFT migration)")
		drop         = fs.Float64("drop", 0, "graceful degradation: drop non-critical tasks starting past this multiple of M0 (0 disables)")
		clarkEst     = fs.Bool("clark", false, "also print Clark's analytic makespan estimate")
		svgPath      = fs.String("svg", "", "write an SVG Gantt chart (with slack windows) to this file")
		workers      = fs.Int("workers", 0, "worker goroutines for population decoding and Monte-Carlo batches (0 = all cores)")
		shards       = fs.Int("shards", 0, "scatter work over this many `robsched worker` subprocesses (0 = in-process); shards Monte-Carlo realizations, and the GA islands when -islands > 1")
		remote       = fs.String("remote", "", "comma-separated TCP worker `addresses` (host:port,... — each started with `robsched worker -listen`): scatter over the network instead of local subprocesses; with -worker-timeout a dead connection is redialed into the rotation")
		pipeline     = fs.Int("pipeline", 0, "realization ranges in flight per worker connection (credit window); 0 derives the depth from the transport round-trip time, 1 restores strict request/response")
		workerTO     = fs.Duration("worker-timeout", 0, "with -shards: liveness deadline per worker exchange — a worker silent this long (no frame, no heartbeat) is declared dead and its work reassigned; also arms worker respawn (0 disables)")
		chaosSeed    = fs.Uint64("chaos", 0, "with -shards: inject seeded transport faults (stalls, drops, corruption, duplicate frames) between coordinator and workers as a self-test; results stay bit-identical (0 disables; requires -worker-timeout)")
		islands      = fs.Int("islands", 1, "GA island populations with ring migration (1 = the paper's single population)")
		obsPath      = fs.String("obs", "", "enable observability: write a JSONL trace to this file and print a telemetry summary")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof, expvar and /debug/obs on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		reg       *obs.Registry
		tracer    *obs.Tracer
		traceFile *os.File
	)
	if *obsPath != "" {
		f, err := os.Create(*obsPath)
		if err != nil {
			return err
		}
		traceFile = f
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(f, 256)
	}
	if *pprofAddr != "" {
		if reg == nil {
			reg = obs.NewRegistry()
		}
		addr, stop, err := obs.Serve(*pprofAddr, reg)
		if err != nil {
			return err
		}
		defer stop()
		obs.PublishExpvar(reg)
		fmt.Fprintf(stderr, "pprof serving on http://%s/debug/pprof/\n", addr)
	}

	// -scenario swaps both ends of the pipeline: the workload family the
	// generator builds and the duration model the Monte-Carlo evaluation
	// samples from. Empty leaves the paper's path bit-identical.
	var scen *scenario.Scenario
	if *scenName != "" {
		if *workloadPath != "" {
			return fmt.Errorf("-scenario generates the workload and conflicts with -workload")
		}
		sc, err := scenario.Lookup(*scenName)
		if err != nil {
			return err
		}
		scen = &sc
	}
	w, err := loadOrGenerate(*workloadPath, *n, *m, *seed, *meanUL, *cc, *ccr, *shape, scen)
	if err != nil {
		return err
	}

	// -shards spawns a pool of `robsched worker` subprocesses — or, with
	// -remote, dials a pool of TCP workers — and routes the Monte-Carlo
	// evaluation (and, with -islands, the GA) through the dist coordinator.
	// Results are bit-identical to the in-process path for every shard and
	// worker count.
	var coord *dist.Coordinator
	if *shards > 0 && *remote != "" {
		return fmt.Errorf("-shards and -remote are mutually exclusive: local subprocesses or remote TCP workers, not both")
	}
	if *shards > 0 || *remote != "" {
		var (
			spawn    func() (dist.Endpoint, error)
			nworkers int
		)
		if *remote != "" {
			var addrs []string
			for _, a := range strings.Split(*remote, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
			if len(addrs) == 0 {
				return fmt.Errorf("-remote lists no worker addresses")
			}
			spawn = dist.TCPSpawner(addrs, 0)
			nworkers = len(addrs)
		} else {
			exe, err := os.Executable()
			if err != nil {
				return fmt.Errorf("locating worker binary: %w", err)
			}
			spawn = dist.ProcEndpoint(exe, "worker")
			nworkers = *shards
		}
		if *chaosSeed != 0 {
			if *workerTO <= 0 {
				return fmt.Errorf("-chaos requires -worker-timeout: a stalled link is only unmasked by a deadline")
			}
			spawn = dist.ChaosSpawner(dist.DefaultChaos(*chaosSeed), spawn)
		}
		pool, err := dist.NewSpawnPool(nworkers, spawn)
		if err != nil {
			return err
		}
		defer pool.Close()
		pool.Obs = reg
		if *workerTO > 0 {
			// With liveness armed, dead workers are worth replacing: budget a
			// couple of respawns (subprocess re-execs, or redials back into
			// the -remote rotation) per worker before degrading in-process.
			pool.Respawn(spawn, 2*nworkers)
		}
		coord = &dist.Coordinator{
			Pool: pool, Obs: reg, Trace: tracer,
			Timeout: *workerTO, PipelineDepth: *pipeline,
		}
	}
	evalAll := func(ss []*schedule.Schedule, opt sim.Options, root *rng.Source) ([]sim.Metrics, error) {
		if coord != nil {
			return coord.EvaluateAll(ss, opt, root)
		}
		return sim.EvaluateAll(ss, opt, root)
	}

	r := rng.New(*seed ^ 0xfeed)
	baseline, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		return err
	}
	if *paretoFront {
		popt := robust.PaperParetoOptions()
		popt.MaxGenerations = *gens
		if popt.MaxGenerations > 300 {
			popt.MaxGenerations = 300
		}
		front, err := robust.SolvePareto(w, popt, r)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "NSGA-II front: %d non-dominated schedules (HEFT: M0 %.4g, slack %.4g)\n",
			len(front), baseline.Makespan(), baseline.AvgSlack())
		fmt.Fprintf(stdout, "%-6s %12s %12s\n", "#", "makespan", "avg slack")
		for i, p := range front {
			fmt.Fprintf(stdout, "%-6d %12.4g %12.4g\n", i, p.Makespan, p.Slack)
		}
		return nil
	}
	var s *schedule.Schedule
	switch *scheduler {
	case "heft":
		s = baseline
	case "heft-noins":
		s, err = heft.HEFT(w, heft.Options{NoInsertion: true})
	case "risk-heft":
		s, err = stoch.HEFT(w, *risk)
	case "weighted":
		var res *robust.Result
		res, err = robust.SolveWeightedSum(w, *weight, robust.Options{
			PopSize: *pop, CrossoverRate: 0.9, MutationRate: 0.1,
			MaxGenerations: *gens, Stagnation: *stagnation,
			Workers: *workers,
		}, r)
		if err == nil {
			s = res.Schedule
		}
	case "cpop":
		s, err = heft.CPOP(w, heft.Options{})
	case "peft":
		s, err = heft.PEFT(w, heft.Options{})
	case "minmin":
		s, err = heft.Batch(w, heft.MinMin)
	case "maxmin":
		s, err = heft.Batch(w, heft.MaxMin)
	case "anneal":
		var res *robust.Result
		res, err = robust.SolveAnneal(w, robust.AnnealOptions{Eps: *eps, Steps: *pop * *gens}, r)
		if err == nil {
			s = res.Schedule
		}
	case "random":
		s, err = heft.RandomSchedule(w, r)
	case "ga":
		opt := robust.Options{
			Eps:            *eps,
			PopSize:        *pop,
			CrossoverRate:  0.9,
			MutationRate:   0.1,
			MaxGenerations: *gens,
			Stagnation:     *stagnation,
			Islands:        *islands,
			Workers:        *workers,
			Obs:            reg,
			Trace:          tracer,
		}
		switch *mode {
		case "eps":
			opt.Mode = robust.EpsilonConstraint
		case "minmakespan":
			opt.Mode = robust.MinMakespan
		case "maxslack":
			opt.Mode = robust.MaxSlack
		default:
			return fmt.Errorf("unknown -mode %q", *mode)
		}
		var res *robust.Result
		if coord != nil && *islands > 1 {
			res, err = coord.Solve(w, opt, r)
		} else {
			res, err = robust.Solve(w, opt, r)
		}
		if err == nil {
			s = res.Schedule
			if !*quiet {
				fmt.Fprintf(stdout, "GA: %d generations (stagnated=%v)\n", res.Generations, res.Stagnated)
			}
		}
	default:
		return fmt.Errorf("unknown -scheduler %q", *scheduler)
	}
	if err != nil {
		return err
	}

	simOpt := sim.Options{Realizations: *realizations, Deadline: *deadline, Workers: *workers, Obs: reg, Trace: tracer}
	if scen != nil {
		simOpt = scen.Apply(simOpt)
	}
	ms, err := evalAll([]*schedule.Schedule{s, baseline}, simOpt, rng.New(*seed^0xbeef))
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(stdout, "workload: %d tasks, %d processors, %d edges, CCR %.3g\n",
			w.N(), w.M(), w.G.EdgeCount(), w.CCR())
		if scen != nil {
			fmt.Fprintf(stdout, "scenario: %s (family %s, durations %s)\n",
				scen.Name, scen.Family, scen.Model)
		}
		fmt.Fprintf(stdout, "\n%-22s %12s %12s\n", "", *scheduler, "heft")
		row := func(name string, a, b float64) {
			fmt.Fprintf(stdout, "%-22s %12.4g %12.4g\n", name, a, b)
		}
		row("expected makespan M0", s.Makespan(), baseline.Makespan())
		row("avg slack", s.AvgSlack(), baseline.AvgSlack())
		row("realized mean", ms[0].MeanMakespan, ms[1].MeanMakespan)
		row("realized std", ms[0].StdMakespan, ms[1].StdMakespan)
		row("mean tardiness E[δ]", ms[0].MeanTardiness, ms[1].MeanTardiness)
		row("miss rate α", ms[0].MissRate, ms[1].MissRate)
		row("robustness R1", ms[0].R1, ms[1].R1)
		row("robustness R2", ms[0].R2, ms[1].R2)
		row("realized p95", ms[0].P95, ms[1].P95)
		row("realized p99", ms[0].P99, ms[1].P99)
		if *deadline > 0 {
			row(fmt.Sprintf("P(M > %.4g)", *deadline), ms[0].DeadlineMissRate, ms[1].DeadlineMissRate)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "%s: M0=%.4g slack=%.4g R1=%.4g R2=%.4g (HEFT M0=%.4g)\n",
		*scheduler, s.Makespan(), s.AvgSlack(), ms[0].R1, ms[0].R2, baseline.Makespan())

	if *clarkEst {
		a := clark.Analyze(s)
		fmt.Fprintf(stdout, "clark: E[M]=%.4g std=%.4g p95=%.4g (analytic; biased high on the mean)\n",
			a.Makespan.Mean, a.Makespan.Std(), a.Quantile(0.95))
	}
	if *repairTheta > 0 {
		rm, err := repair.Evaluate(s, repair.Policy{Threshold: *repairTheta},
			sim.Options{Realizations: *realizations, Workers: *workers}, rng.New(*seed^0xcafe))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "repair θ=%.3g: realized mean %.4g (vs %.4g rigid), p95 %.4g, %.2f reschedules/run\n",
			*repairTheta, rm.MeanMakespan, ms[0].MeanMakespan, rm.P95, rm.MeanReschedules)
	}

	if *faults != "" {
		var src fault.Sampler
		switch *faults {
		case "auto":
			mo := fault.Model{
				MTBF:        *mtbf * baseline.Makespan(),
				OutageEvery: 2 * baseline.Makespan(),
				OutageMean:  0.05 * baseline.Makespan(),
				KeepOne:     true,
			}
			if err := mo.Validate(); err != nil {
				return err
			}
			src = mo
		default:
			f, err := os.Open(*faults)
			if err != nil {
				return err
			}
			sc, err := wio.ReadScenario(f)
			f.Close()
			if err != nil {
				return err
			}
			src = fault.Fixed{S: sc}
		}
		pol := repair.FaultPolicy{
			Policy:     repair.NeverReschedule(),
			Retry:      repair.RetryPolicy{MaxRetries: *retries, Migrate: true},
			DropFactor: *drop,
			Obs:        reg,
			Trace:      tracer,
		}
		if *repairTheta > 0 {
			pol.Threshold = *repairTheta
		}
		// Both schedules face the same fault and duration streams (common
		// random numbers) over a shared horizon.
		horizon := 4 * baseline.Makespan()
		opt := sim.Options{Realizations: *realizations, Deadline: *deadline, Workers: *workers}
		fm, err := repair.EvaluateFaults(s, pol, src, horizon, opt, rng.New(*seed^0xdead))
		if err != nil {
			return err
		}
		fb, err := repair.EvaluateFaults(baseline, pol, src, horizon, opt, rng.New(*seed^0xdead))
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stdout, "\nfaults (%s, retries=%d, drop=%.3g):\n", *faults, *retries, *drop)
			fmt.Fprintf(stdout, "%-22s %12s %12s\n", "", *scheduler, "heft")
			row := func(name string, a, b float64) {
				fmt.Fprintf(stdout, "%-22s %12.4g %12.4g\n", name, a, b)
			}
			row("fault realized mean", fm.MeanMakespan, fb.MeanMakespan)
			row("fault realized p95", fm.P95, fb.P95)
			row("fault robustness R1", fm.R1, fb.R1)
			row("completion %", 100*fm.MeanCompletion, 100*fb.MeanCompletion)
			row("retries/run", fm.MeanRetries, fb.MeanRetries)
			row("migrations/run", fm.MeanMigrations, fb.MeanMigrations)
			row("drops/run", fm.MeanDropped, fb.MeanDropped)
			row("failed runs %", 100*fm.FailRate, 100*fb.FailRate)
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "faults: mean=%.4g completion=%.1f%% retries=%.2f drops=%.2f (HEFT mean=%.4g)\n",
			fm.MeanMakespan, 100*fm.MeanCompletion, fm.MeanRetries, fm.MeanDropped, fb.MeanMakespan)
	}

	if *gantt {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, s.Gantt(96))
	}
	if *svgPath != "" {
		title := fmt.Sprintf("%s on %d tasks / %d processors", *scheduler, w.N(), w.M())
		svg := viz.GanttSVG(s, viz.GanttOptions{Title: title, ShowSlack: true})
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stdout, "SVG Gantt written to %s\n", *svgPath)
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := wio.WriteSchedule(f, s); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stdout, "schedule written to %s\n", *outPath)
		}
	}
	if *obsPath != "" {
		// The summary block prints only registry contents — deterministic
		// counts, never wall-clock — so it is stable across runs and pinned
		// by the golden test. Timings live in the JSONL trace.
		tracer.SnapshotRegistry("final", reg)
		if err := tracer.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n--- observability ---\n")
		if err := reg.Snapshot().WriteSummary(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "trace written to %s\n", *obsPath)
	}
	return nil
}

func loadOrGenerate(path string, n, m int, seed uint64, ul, cc, ccr, shape float64, scen *scenario.Scenario) (*platform.Workload, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return wio.ReadWorkload(f)
	}
	p := gen.PaperParams()
	p.N, p.M = n, m
	p.MeanUL, p.CC, p.CCR, p.Shape = ul, cc, ccr, shape
	if scen != nil {
		return scen.Workload(p, rng.New(seed))
	}
	return gen.Random(p, rng.New(seed))
}
