module robsched

go 1.22
