// Package robsched is a library for robust static scheduling of
// DAG-structured applications onto non-deterministic heterogeneous
// computing systems, reproducing
//
//	Zhiao Shi, Emmanuel Jeannot, Jack J. Dongarra.
//	"Robust task scheduling in non-deterministic heterogeneous computing
//	systems." IEEE CLUSTER 2006.
//
// A parallel application is a task graph whose edges carry communication
// data; the platform is a set of fully connected heterogeneous processors.
// Task durations are uncertain: the real duration of task i on processor j
// is U(b_ij, (2·UL_ij−1)·b_ij) around the best-case time b_ij, so the
// expected duration UL_ij·b_ij is all a static scheduler sees.
//
// The library provides:
//
//   - the schedule model of the paper — disjunctive graphs, ASAP makespan
//     semantics (Claim 3.2), per-task and average slack (Definition 3.3);
//   - deterministic baselines HEFT and CPOP;
//   - the bi-objective genetic algorithm (Section 4): maximize average
//     slack subject to M0(s) ≤ ε·M_HEFT, via the ε-constraint method;
//   - a Monte-Carlo evaluator for the robustness metrics R1 (inverse
//     expected relative tardiness) and R2 (inverse miss rate);
//   - workload generators (layered random DAGs, the COV heterogeneity
//     model of Ali et al., structured graphs) and the full experiment
//     harness regenerating every figure of the paper's evaluation.
//
// # Quick start
//
//	r := robsched.NewRNG(42)
//	w, _ := robsched.GenerateWorkload(robsched.PaperWorkloadParams(), r)
//	res, _ := robsched.Solve(w, robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.2), r)
//	m, _ := robsched.Evaluate(res.Schedule, robsched.PaperSimOptions(), r)
//	fmt.Printf("makespan %.1f (HEFT %.1f), R1 %.2f, miss rate %.2f\n",
//	    res.Schedule.Makespan(), res.MHEFT, m.R1, m.MissRate)
//
// All randomness flows through explicit *RNG sources, so every result is
// reproducible from a seed; Monte-Carlo evaluation parallelizes internally
// with per-realization streams and is deterministic regardless of the
// worker count.
package robsched

import (
	"io"

	"robsched/internal/clark"
	"robsched/internal/dag"
	"robsched/internal/dynamic"
	"robsched/internal/experiments"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/measures"
	"robsched/internal/pareto"
	"robsched/internal/platform"
	"robsched/internal/repair"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/stats"
	"robsched/internal/stoch"
	"robsched/internal/viz"
	"robsched/internal/wio"
)

// RNG is a deterministic, splittable random source. All library entry
// points that sample take one explicitly.
type RNG = rng.Source

// NewRNG returns a source seeded with the given value; the same seed
// reproduces the same stream.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Graph is an immutable directed acyclic task graph; edges carry the data
// volume communicated between dependent tasks.
type Graph = dag.Graph

// GraphBuilder accumulates tasks and edges and validates them into a Graph.
type GraphBuilder = dag.Builder

// GraphEdge is one directed edge of a task graph.
type GraphEdge = dag.Edge

// NewGraphBuilder returns a builder for a task graph with n tasks,
// identified 0..n-1.
func NewGraphBuilder(n int) *GraphBuilder { return dag.NewBuilder(n) }

// Matrix is a dense rows×cols matrix used for execution times, uncertainty
// levels and transfer rates.
type Matrix = platform.Matrix

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) Matrix { return platform.NewMatrix(rows, cols) }

// MatrixFromRows builds a matrix from row slices of equal length.
func MatrixFromRows(rows [][]float64) (Matrix, error) { return platform.MatrixFromRows(rows) }

// System is a fully connected set of heterogeneous processors with a data
// transfer rate matrix.
type System = platform.System

// NewSystem validates a square positive rate matrix into a System.
func NewSystem(rates Matrix) (*System, error) { return platform.NewSystem(rates) }

// UniformSystem returns m processors joined by links of one common rate.
func UniformSystem(m int, rate float64) *System { return platform.UniformSystem(m, rate) }

// Workload bundles a task graph, a platform, the best-case execution time
// matrix and the uncertainty-level matrix — one scheduling problem
// instance.
type Workload = platform.Workload

// NewWorkload validates and assembles a workload.
func NewWorkload(g *Graph, sys *System, bcet, ul Matrix) (*Workload, error) {
	return platform.NewWorkload(g, sys, bcet, ul)
}

// DeterministicWorkload builds a workload whose durations are exact
// (UL = 1 everywhere): the classical deterministic scheduling model.
func DeterministicWorkload(g *Graph, sys *System, exec Matrix) (*Workload, error) {
	return platform.DeterministicWorkload(g, sys, exec)
}

// WorkloadParams parameterizes the random workload generator of the
// paper's evaluation: graph size and shape, average computation cost,
// communication-to-computation ratio, COV heterogeneity, uncertainty
// levels and platform size.
type WorkloadParams = gen.Params

// PaperWorkloadParams returns the parameter values of Section 5 (n=100,
// α=1, cc=20, CCR=0.1, V=0.5 everywhere, 8 processors).
func PaperWorkloadParams() WorkloadParams { return gen.PaperParams() }

// GenerateWorkload samples one random workload instance.
func GenerateWorkload(p WorkloadParams, r *RNG) (*Workload, error) { return gen.Random(p, r) }

// GenerateGraph samples only the random layered task graph.
func GenerateGraph(p WorkloadParams, r *RNG) (*Graph, error) { return gen.RandomGraph(p, r) }

// ExecMatrix samples an execution-time matrix with the COV-based
// heterogeneity model of Ali et al. (HCW 2000).
func ExecMatrix(n, m int, muTask, vTask, vMach float64, r *RNG) Matrix {
	return gen.ExecMatrix(n, m, muTask, vTask, vMach, r)
}

// ULMatrix samples the two-level Gamma uncertainty-level matrix of
// Section 5, clamped to ≥ 1.
func ULMatrix(n, m int, meanUL, v1, v2 float64, r *RNG) Matrix {
	return gen.ULMatrix(n, m, meanUL, v1, v2, r)
}

// Structured task graphs for examples and domain workloads.
var (
	// PaperExampleGraph returns the 8-task illustrative graph of Fig. 1.
	PaperExampleGraph = gen.PaperExampleGraph
	// GaussianElimination returns the DAG of Gaussian elimination on a
	// k×k matrix.
	GaussianElimination = gen.GaussianElimination
	// FFT returns the butterfly DAG of a 2^stages-point FFT.
	FFT = gen.FFT
	// ForkJoin returns sequential fork-join stages.
	ForkJoin = gen.ForkJoin
	// Stencil returns a width×depth pipeline stencil DAG.
	Stencil = gen.Stencil
	// OutTree returns a random rooted out-tree (divide-style computation).
	OutTree = gen.OutTree
	// InTree returns a random rooted in-tree (reduction-style computation).
	InTree = gen.InTree
	// SeriesParallel returns a random series-parallel DAG.
	SeriesParallel = gen.SeriesParallel
)

// Schedule is an immutable task→processor assignment with per-processor
// orders and the full expected-duration analysis: start/finish times,
// makespan M0, top/bottom levels, per-task and average slack.
type Schedule = schedule.Schedule

// NewSchedule builds a schedule from a task→processor map and explicit
// per-processor orders, validating them against the precedence
// constraints.
func NewSchedule(w *Workload, proc []int, procOrder [][]int) (*Schedule, error) {
	return schedule.New(w, proc, procOrder)
}

// ScheduleFromOrder builds a schedule from a global topological execution
// order plus a task→processor map (the GA chromosome decoding).
func ScheduleFromOrder(w *Workload, order, proc []int) (*Schedule, error) {
	return schedule.FromOrder(w, order, proc)
}

// ScheduleFromOrderTrusted is ScheduleFromOrder without the O(V+E)
// precedence re-validation, for orders known to be topological by
// construction (e.g. produced by the GA operators). Non-permutations and
// out-of-range processors are still rejected.
func ScheduleFromOrderTrusted(w *Workload, order, proc []int) (*Schedule, error) {
	return schedule.FromOrderTrusted(w, order, proc)
}

// ScheduleDecoder is the pooled fast path for decoding many trusted
// (order, proc) pairs against one workload with minimal allocation.
type ScheduleDecoder = schedule.Decoder

// NewScheduleDecoder returns a decoder for the workload.
func NewScheduleDecoder(w *Workload) *ScheduleDecoder { return schedule.NewDecoder(w) }

// HEFT schedules the workload with the Heterogeneous Earliest Finish Time
// heuristic (Topcuoglu et al.), the paper's baseline and GA seed.
func HEFT(w *Workload) (*Schedule, error) { return heft.HEFT(w, heft.Options{}) }

// HEFTNoInsertion is HEFT with the insertion-based slot search disabled
// (append-only), exposed for ablation studies.
func HEFTNoInsertion(w *Workload) (*Schedule, error) {
	return heft.HEFT(w, heft.Options{NoInsertion: true})
}

// CPOP schedules the workload with the Critical Path On a Processor
// heuristic (Topcuoglu et al.).
func CPOP(w *Workload) (*Schedule, error) { return heft.CPOP(w, heft.Options{}) }

// PEFT schedules the workload with the Predict Earliest Finish Time
// heuristic (Arabnejad & Barbosa): HEFT's modern successor, placing each
// task with a one-hop lookahead via the optimistic cost table.
func PEFT(w *Workload) (*Schedule, error) { return heft.PEFT(w, heft.Options{}) }

// RandomSchedule returns a uniformly random valid schedule.
func RandomSchedule(w *Workload, r *RNG) (*Schedule, error) { return heft.RandomSchedule(w, r) }

// BatchRule selects a levelized batch heuristic.
type BatchRule = heft.BatchRule

// Batch heuristics: Min-Min commits the globally earliest-finishing ready
// task; Max-Min commits the ready task whose best finish is latest.
const (
	MinMin = heft.MinMin
	MaxMin = heft.MaxMin
)

// BatchSchedule runs the levelized Min-Min / Max-Min batch heuristic.
func BatchSchedule(w *Workload, rule BatchRule) (*Schedule, error) { return heft.Batch(w, rule) }

// UpwardRanks returns HEFT's upward rank of every task.
func UpwardRanks(w *Workload) []float64 { return heft.UpwardRanks(w) }

// Mode selects the GA objective of the robust scheduler.
type Mode = robust.Mode

// GA objectives: the paper's ε-constraint bi-objective method and the two
// single-objective modes used in its Section 5.1 experiments.
const (
	EpsilonConstraint = robust.EpsilonConstraint
	MinMakespan       = robust.MinMakespan
	MaxSlack          = robust.MaxSlack
)

// SlackMetric selects the robustness surrogate the GA maximizes.
type SlackMetric = robust.SlackMetric

// Slack surrogates: the paper's average slack, or the more conservative
// minimum slack extension.
const (
	AvgSlackMetric = robust.AvgSlack
	MinSlackMetric = robust.MinSlack
)

// SolveOptions configures the robust genetic scheduler: objective, ε,
// slack surrogate and GA parameters.
type SolveOptions = robust.Options

// SolveResult is the outcome of a robust scheduling run: the best schedule,
// the HEFT baseline and run statistics.
type SolveResult = robust.Result

// PaperSolveOptions returns the paper's GA configuration (Np=20, pc=0.9,
// pm=0.1, 1000 generations, 100-generation stagnation) for the given mode
// and ε.
func PaperSolveOptions(mode Mode, eps float64) SolveOptions { return robust.PaperOptions(mode, eps) }

// Solve runs the bi-objective genetic algorithm of Section 4 on the
// workload.
func Solve(w *Workload, opt SolveOptions, r *RNG) (*SolveResult, error) {
	return robust.Solve(w, opt, r)
}

// SimOptions configures Monte-Carlo evaluation (sample count, parallelism).
type SimOptions = sim.Options

// SimMetrics reports a schedule's realized behaviour: makespan
// distribution, expected relative tardiness, miss rate, and the paper's
// robustness metrics R1 = 1/E[δ] and R2 = 1/α.
type SimMetrics = sim.Metrics

// PaperSimOptions returns the paper's evaluation scale (1000 realizations).
func PaperSimOptions() SimOptions { return sim.PaperOptions() }

// Evaluate runs Monte-Carlo realizations of one schedule and returns its
// robustness metrics.
func Evaluate(s *Schedule, opt SimOptions, r *RNG) (SimMetrics, error) {
	return sim.Evaluate(s, opt, r)
}

// CVaR returns the conditional value at risk of the schedule's makespan at
// level q: the mean of the worst (1−q) fraction of sampled realizations.
func CVaR(s *Schedule, q float64, opt SimOptions, r *RNG) (float64, error) {
	return sim.CVaR(s, q, opt, r)
}

// VizSeries is one named curve for SVG chart rendering.
type VizSeries = viz.Series

// ChartOptions styles LineChartSVG.
type ChartOptions = viz.ChartOptions

// GanttOptions styles GanttSVG.
type GanttOptions = viz.GanttOptions

// HistogramOptions styles HistogramSVG.
type HistogramOptions = viz.HistogramOptions

// LineChartSVG renders curves as a standalone SVG line chart.
func LineChartSVG(series []VizSeries, opt ChartOptions) string { return viz.LineChartSVG(series, opt) }

// GanttSVG renders a schedule as an SVG Gantt chart, optionally shading
// each task's slack window.
func GanttSVG(s *Schedule, opt GanttOptions) string { return viz.GanttSVG(s, opt) }

// HistogramSVG renders an empirical distribution (e.g. SampleMakespans
// output) as an SVG histogram with labelled reference markers.
func HistogramSVG(samples []float64, opt HistogramOptions) string {
	return viz.HistogramSVG(samples, opt)
}

// DeadlineForConfidence returns the smallest deadline the schedule meets
// with the given confidence across sampled realizations — "what completion
// time can I promise with 95% confidence?".
func DeadlineForConfidence(s *Schedule, confidence float64, opt SimOptions, r *RNG) (float64, error) {
	return sim.DeadlineForConfidence(s, confidence, opt, r)
}

// EvaluateAll evaluates several schedules of one workload under common
// random numbers (identical sampled environments), the right way to
// estimate improvements of one scheduler over another.
func EvaluateAll(ss []*Schedule, opt SimOptions, r *RNG) ([]SimMetrics, error) {
	return sim.EvaluateAll(ss, opt, r)
}

// RealizeAll exposes the Monte-Carlo engine's raw output: the realized
// makespans of every schedule, indexed [schedule][realization], under common
// random numbers. Evaluate, EvaluateAll, CVaR and DeadlineForConfidence are
// views over this sample; it is the input for custom risk measures and
// distributional comparisons (e.g. KSDistance). Results are bit-identical
// for every Workers and BatchSize setting.
func RealizeAll(ss []*Schedule, opt SimOptions, r *RNG) ([][]float64, error) {
	return sim.RealizeAll(ss, opt, r)
}

// OverallPerformance computes the paper's combined score P(s) (Eqn. 9):
// r·ln(M_HEFT/M) + (1−r)·ln(R/R_HEFT).
func OverallPerformance(r, makespan, makespanHEFT, robustness, robustnessHEFT float64) float64 {
	return stats.OverallPerformance(r, makespan, makespanHEFT, robustness, robustnessHEFT)
}

// ExperimentConfig parameterizes the figure-regeneration harness.
type ExperimentConfig = experiments.Config

// ExperimentSeries is one named curve of a regenerated figure.
type ExperimentSeries = experiments.Series

// Sweep is the UL × ε × graph grid of GA outcomes behind Figs. 4–8.
type Sweep = experiments.Sweep

// EvolutionTraceResult holds the Fig. 2 / Fig. 3 trajectories.
type EvolutionTraceResult = experiments.Trace

// Robustness metric selectors for the experiment harness.
const (
	MetricR1 = experiments.R1
	MetricR2 = experiments.R2
)

// DefaultExperimentConfig returns a configuration that reproduces every
// figure's qualitative shape in seconds.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// PaperScaleExperimentConfig returns the published experimental scale
// (100 graphs × 1000 realizations × 1000 generations); expect hours.
func PaperScaleExperimentConfig() ExperimentConfig { return experiments.PaperScale() }

// Fig1WorkedExample renders the paper's Fig. 1 walkthrough (task graph,
// system, schedule notation, Gantt, disjunctive graph) as text plus DOT.
func Fig1WorkedExample(seed uint64) (string, error) { return experiments.Fig1(seed) }

// FormatSeries renders regenerated figure data as an aligned text table.
func FormatSeries(title, xlabel string, series []ExperimentSeries) string {
	return experiments.FormatSeries(title, xlabel, series)
}

// ParetoOptions configures the NSGA-II front solver.
type ParetoOptions = robust.ParetoOptions

// ParetoPoint is one non-dominated schedule of an NSGA-II front.
type ParetoPoint = robust.ParetoPoint

// PaperParetoOptions returns NSGA-II parameters sized like the paper's GA.
func PaperParetoOptions() ParetoOptions { return robust.PaperParetoOptions() }

// SolvePareto runs NSGA-II over (minimize makespan, maximize slack) and
// returns the approximated Pareto front sorted by increasing makespan —
// the whole trade-off curve the ε-constraint method samples one point of.
func SolvePareto(w *Workload, opt ParetoOptions, r *RNG) ([]ParetoPoint, error) {
	return robust.SolvePareto(w, opt, r)
}

// SolveWeightedSum runs the classical weighted-sum scalarization
// comparator: maximize weight·(M_HEFT/M0) + (1−weight)·(slack/M_HEFT).
func SolveWeightedSum(w *Workload, weight float64, opt SolveOptions, r *RNG) (*SolveResult, error) {
	return robust.SolveWeightedSum(w, weight, opt, r)
}

// AnnealOptions configures the simulated-annealing comparator.
type AnnealOptions = robust.AnnealOptions

// PaperishAnnealOptions returns an SA budget matched to the paper's GA
// (20000 evaluations).
func PaperishAnnealOptions(eps float64) AnnealOptions { return robust.PaperishAnnealOptions(eps) }

// SolveAnneal runs simulated annealing over the same chromosome,
// neighbourhood and ε-constraint objective as the GA — the
// search-strategy comparator among the paper's "guided random search
// methods".
func SolveAnneal(w *Workload, opt AnnealOptions, r *RNG) (*SolveResult, error) {
	return robust.SolveAnneal(w, opt, r)
}

// DynamicResult is one simulated online execution of the dynamic
// dispatcher baseline.
type DynamicResult = dynamic.Result

// SimulateDynamic plays the rank-ordered earliest-finish-time online
// dispatcher against one realized duration matrix, with placement
// decisions based on the estimate matrix (normally the expected
// durations).
func SimulateDynamic(w *Workload, durs, estimate Matrix, ranks []float64) (DynamicResult, error) {
	return dynamic.Simulate(w, durs, estimate, ranks)
}

// EvaluateDynamic Monte-Carlo evaluates the online dispatcher with metrics
// directly comparable to Evaluate on static schedules.
func EvaluateDynamic(w *Workload, opt SimOptions, r *RNG) (SimMetrics, error) {
	return dynamic.Evaluate(w, opt, r)
}

// RealizeDurations samples one full n×m actual-duration matrix — one
// concrete environment realization.
func RealizeDurations(w *Workload, r *RNG) Matrix { return dynamic.RealizeMatrix(w, r) }

// Moments is a mean/variance pair of an (approximately normal) variable.
type Moments = clark.Moments

// ClarkAnalysis is the analytic (Monte-Carlo-free) makespan-distribution
// estimate of a schedule.
type ClarkAnalysis = clark.Analysis

// AnalyzeClark estimates E[makespan] and Var[makespan] of a schedule with
// Clark's moment-matching recursion over the disjunctive graph — a fast
// screening alternative to Monte-Carlo simulation (see internal/clark for
// the method's documented bias bands).
func AnalyzeClark(s *Schedule) ClarkAnalysis { return clark.Analyze(s) }

// MeasureReport bundles the related-work robustness measures of one
// schedule: Bölöni & Marinescu's critical components and criticality
// entropy, Leon et al.'s mean slack, and the Monte-Carlo metrics.
type MeasureReport = measures.Report

// MeasureRobustness computes the full related-work measure report.
func MeasureRobustness(s *Schedule, realizations int, r *RNG) (MeasureReport, error) {
	return measures.Measure(s, realizations, r)
}

// CriticalityProbabilities estimates, per task, the probability of lying
// on a critical path of a realized execution.
func CriticalityProbabilities(s *Schedule, realizations int, r *RNG) ([]float64, error) {
	return measures.CriticalityProbabilities(s, realizations, r)
}

// KSDistance is the two-sample Kolmogorov–Smirnov statistic between
// empirical samples — England et al.'s distributional robustness view.
func KSDistance(a, b []float64) (float64, error) { return measures.KSDistance(a, b) }

// SampleMakespans draws n realized makespans of a schedule.
func SampleMakespans(s *Schedule, n int, r *RNG) ([]float64, error) {
	return measures.SampleMakespans(s, n, r)
}

// SigmaMatrix returns the n×m duration standard deviations implied by the
// workload's uniform model: σ_ij = (UL_ij − 1)·b_ij/√3 — the "stochastic
// information" the paper's future work proposes exploiting.
func SigmaMatrix(w *Workload) Matrix { return stoch.Sigma(w) }

// RiskAdjustedWorkload returns a planning view whose durations are
// E[c] + k·σ, turning any deterministic scheduler into a variance-aware
// one. Schedules built on the view must be re-bound with RebindSchedule
// before evaluation.
func RiskAdjustedWorkload(w *Workload, k float64) (*Workload, error) {
	return stoch.RiskAdjusted(w, k)
}

// RebindSchedule re-expresses a schedule planned on one view of a workload
// as a schedule of the target workload (same graph and platform),
// revalidating and re-analyzing it.
func RebindSchedule(s *Schedule, target *Workload) (*Schedule, error) {
	return stoch.Rebind(s, target)
}

// RiskHEFT is HEFT on risk-adjusted durations E[c] + k·σ, bound back to
// the original workload — the variance-aware baseline of the paper's
// future-work direction.
func RiskHEFT(w *Workload, k float64) (*Schedule, error) { return stoch.HEFT(w, k) }

// RepairPolicy selects the runtime repair behaviour when executing a
// static schedule against realized durations.
type RepairPolicy = repair.Policy

// RepairOutcome is one simulated execution under a repair policy.
type RepairOutcome = repair.Outcome

// RepairMetrics extends the simulator metrics with repair statistics.
type RepairMetrics = repair.Metrics

// NeverReschedule is pure right-shift execution — exactly the paper's
// realization semantics.
func NeverReschedule() RepairPolicy { return repair.NeverReschedule() }

// ExecuteWithRepair plays one realized duration matrix against the
// schedule under the repair policy.
func ExecuteWithRepair(s *Schedule, durs Matrix, pol RepairPolicy) (RepairOutcome, error) {
	return repair.Execute(s, durs, pol)
}

// EvaluateWithRepair Monte-Carlo evaluates a schedule executed under the
// repair policy; metrics are comparable to the static Evaluate.
func EvaluateWithRepair(s *Schedule, pol RepairPolicy, opt SimOptions, r *RNG) (RepairMetrics, error) {
	return repair.Evaluate(s, pol, opt, r)
}

// ParetoFilter returns the indices of the non-dominated objective vectors
// (all objectives minimized).
func ParetoFilter(objs [][]float64) []int { return pareto.Filter(objs) }

// Hypervolume2D returns the area dominated by 2-objective points (both
// minimized) inside the reference box; the standard front-quality
// indicator.
func Hypervolume2D(objs [][]float64, ref [2]float64) float64 {
	return pareto.Hypervolume2D(objs, ref)
}

// WriteWorkload serializes a workload as JSON (see internal/wio for the
// format).
func WriteWorkload(out io.Writer, w *Workload) error { return wio.WriteWorkload(out, w) }

// ReadWorkload parses and validates a JSON workload.
func ReadWorkload(in io.Reader) (*Workload, error) { return wio.ReadWorkload(in) }

// WriteSchedule serializes a schedule as JSON.
func WriteSchedule(out io.Writer, s *Schedule) error { return wio.WriteSchedule(out, s) }

// ReadSchedule parses a JSON schedule and re-validates it against the
// workload.
func ReadSchedule(in io.Reader, w *Workload) (*Schedule, error) { return wio.ReadSchedule(in, w) }
