package robsched_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"robsched"
)

// buildDiamond is the deterministic fixture used across the public-API
// tests: the 4-task diamond on two unit-rate processors.
func buildDiamond(t testing.TB) *robsched.Workload {
	t.Helper()
	b := robsched.NewGraphBuilder(4)
	for _, e := range []struct {
		u, v int
		d    float64
	}{{0, 1, 2}, {0, 2, 4}, {1, 3, 1}, {2, 3, 3}} {
		if err := b.AddEdge(e.u, e.v, e.d); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exec, err := robsched.MatrixFromRows([][]float64{{2, 3}, {3, 2}, {4, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := robsched.DeterministicWorkload(g, robsched.UniformSystem(2, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicEndToEnd(t *testing.T) {
	r := robsched.NewRNG(7)
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 40, 4
	p.MeanUL = 3
	w, err := robsched.GenerateWorkload(p, r)
	if err != nil {
		t.Fatal(err)
	}

	heftS, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	cpopS, err := robsched.CPOP(w)
	if err != nil {
		t.Fatal(err)
	}
	if heftS.Makespan() <= 0 || cpopS.Makespan() <= 0 {
		t.Fatal("baseline makespans must be positive")
	}

	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.3)
	opt.MaxGenerations = 120
	opt.Stagnation = 0
	res, err := robsched.Solve(w, opt, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > 1.3*res.MHEFT+1e-9 {
		t.Fatalf("constraint violated: %g > 1.3·%g", res.Schedule.Makespan(), res.MHEFT)
	}
	if res.Schedule.AvgSlack() < heftS.AvgSlack()-1e-9 {
		t.Fatalf("GA slack %g below HEFT slack %g", res.Schedule.AvgSlack(), heftS.AvgSlack())
	}

	ms, err := robsched.EvaluateAll(
		[]*robsched.Schedule{res.Schedule, heftS},
		robsched.SimOptions{Realizations: 400},
		robsched.NewRNG(99),
	)
	if err != nil {
		t.Fatal(err)
	}
	// The central claim: more slack, more robustness.
	if ms[0].R1 <= ms[1].R1 {
		t.Errorf("GA R1 %g not above HEFT R1 %g despite slack %g vs %g",
			ms[0].R1, ms[1].R1, res.Schedule.AvgSlack(), heftS.AvgSlack())
	}
	// Overall performance favors the GA when robustness is emphasized.
	pGA := robsched.OverallPerformance(0.1, ms[0].MeanMakespan, ms[1].MeanMakespan, ms[0].R1, ms[1].R1)
	if pGA <= 0 {
		t.Errorf("overall performance at r=0.1 is %g, want > 0", pGA)
	}
}

func TestPublicDiamondAnalysis(t *testing.T) {
	w := buildDiamond(t)
	s, err := robsched.NewSchedule(w, []int{0, 0, 1, 0}, [][]int{{0, 1, 3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 12 || s.AvgSlack() != 1.5 || s.Slack(1) != 6 {
		t.Fatalf("analysis wrong: M=%g avg=%g σ1=%g", s.Makespan(), s.AvgSlack(), s.Slack(1))
	}
	if got := s.String(); !strings.Contains(got, "(v1,v2)") {
		t.Errorf("String = %q", got)
	}
}

func TestPublicScheduleFromOrder(t *testing.T) {
	w := buildDiamond(t)
	s, err := robsched.ScheduleFromOrder(w, []int{0, 2, 1, 3}, []int{0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 12 {
		t.Fatalf("Makespan = %g", s.Makespan())
	}
}

func TestPublicStructuredGraphs(t *testing.T) {
	r := robsched.NewRNG(3)
	cases := []struct {
		name string
		g    *robsched.Graph
		err  error
	}{}
	gauss, err := robsched.GaussianElimination(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	fft, err := robsched.FFT(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := robsched.ForkJoin(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := robsched.Stencil(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases,
		struct {
			name string
			g    *robsched.Graph
			err  error
		}{"gauss", gauss, nil},
		struct {
			name string
			g    *robsched.Graph
			err  error
		}{"fft", fft, nil},
		struct {
			name string
			g    *robsched.Graph
			err  error
		}{"forkjoin", fj, nil},
		struct {
			name string
			g    *robsched.Graph
			err  error
		}{"stencil", st, nil},
	)
	for _, c := range cases {
		exec := robsched.ExecMatrix(c.g.N(), 3, 20, 0.5, 0.5, r)
		ul := robsched.ULMatrix(c.g.N(), 3, 2, 0.5, 0.5, r)
		w, err := robsched.NewWorkload(c.g, robsched.UniformSystem(3, 1), exec, ul)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		s, err := robsched.HEFT(w)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if s.Makespan() <= 0 {
			t.Fatalf("%s: bad makespan", c.name)
		}
	}
}

func TestPublicPaperExampleGraph(t *testing.T) {
	g := robsched.PaperExampleGraph(2)
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
	r := robsched.NewRNG(5)
	exec := robsched.ExecMatrix(8, 4, 10, 0.5, 0.5, r)
	ul := robsched.ULMatrix(8, 4, 2, 0.5, 0.5, r)
	w, err := robsched.NewWorkload(g, robsched.UniformSystem(4, 1), exec, ul)
	if err != nil {
		t.Fatal(err)
	}
	s, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := robsched.Evaluate(s, robsched.SimOptions{Realizations: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanMakespan < s.Makespan()*0.5 {
		t.Fatal("implausible realized makespan")
	}
}

func TestPublicWorkloadIO(t *testing.T) {
	w := buildDiamond(t)
	var buf bytes.Buffer
	if err := robsched.WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := robsched.ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := robsched.HEFT(w2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan() != s2.Makespan() {
		t.Fatal("round-tripped workload schedules differently")
	}
	var sbuf bytes.Buffer
	if err := robsched.WriteSchedule(&sbuf, s1); err != nil {
		t.Fatal(err)
	}
	s3, err := robsched.ReadSchedule(&sbuf, w)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Makespan() != s1.Makespan() {
		t.Fatal("round-tripped schedule changed")
	}
}

func TestPublicRandomScheduleAndRanks(t *testing.T) {
	w := buildDiamond(t)
	r := robsched.NewRNG(11)
	s, err := robsched.RandomSchedule(w, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() <= 0 {
		t.Fatal("bad makespan")
	}
	ranks := robsched.UpwardRanks(w)
	if len(ranks) != 4 {
		t.Fatalf("ranks = %v", ranks)
	}
	// Entry dominates, exit is smallest.
	if ranks[0] <= ranks[1] || ranks[0] <= ranks[2] || ranks[3] >= ranks[1] {
		t.Fatalf("rank order wrong: %v", ranks)
	}
}

func TestPublicHEFTInsertionAblation(t *testing.T) {
	r := robsched.NewRNG(13)
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 60, 4
	w, err := robsched.GenerateWorkload(p, r)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	app, err := robsched.HEFTNoInsertion(w)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Makespan() <= 0 || app.Makespan() <= 0 {
		t.Fatal("bad makespans")
	}
}

func TestPublicExperimentHarness(t *testing.T) {
	cfg := robsched.DefaultExperimentConfig()
	cfg.Gen.N = 20
	cfg.Gen.M = 3
	cfg.Graphs = 2
	cfg.Realizations = 80
	cfg.ULs = []float64{2}
	cfg.Eps = []float64{1.0, 1.5}
	cfg.GA.MaxGenerations = 25
	cfg.GA.PopSize = 8
	sw, err := cfg.RunSweep()
	if err != nil {
		t.Fatal(err)
	}
	series, err := sw.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	out := robsched.FormatSeries("Fig. 4", "UL", series)
	if !strings.Contains(out, "R1") || !strings.Contains(out, "Makespan") {
		t.Errorf("missing columns:\n%s", out)
	}
	for _, s := range series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				t.Errorf("series %s has NaN", s.Name)
			}
		}
	}
}

func TestPublicSlackTheorem(t *testing.T) {
	// Public-API restatement of Theorem 3.4 on the diamond fixture.
	w := buildDiamond(t)
	s, err := robsched.NewSchedule(w, []int{0, 0, 1, 0}, [][]int{{0, 1, 3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	dur := s.ExpectedDurations()
	dur[1] += s.Slack(1)
	if got := s.MakespanWith(dur); got != s.Makespan() {
		t.Fatalf("delay within slack changed makespan: %g != %g", got, s.Makespan())
	}
	dur[1] += 0.5
	if got := s.MakespanWith(dur); got <= s.Makespan() {
		t.Fatalf("delay beyond slack did not extend makespan: %g", got)
	}
}
