package robsched_test

// Cross-module integration tests: full pipelines through the public API,
// asserting the paper's qualitative results end to end. The heavier
// scenarios honour -short.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"robsched"
)

// TestIntegrationPaperStory runs the paper's whole argument on one
// workload batch: HEFT is fast but fragile; the ε-constraint GA buys
// robustness (R1, R2) within a bounded makespan budget; relaxing ε buys
// more; and the overall-performance score picks sensible ε per user
// weight.
func TestIntegrationPaperStory(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	type cell struct {
		eps        float64
		m0, slack  float64
		r1, r2     float64
		meanM, p95 float64
	}
	const graphs = 3
	epsGrid := []float64{1.0, 1.5, 2.0}
	agg := make([]cell, len(epsGrid))
	var heftR1, heftMean float64
	for g := 0; g < graphs; g++ {
		p := robsched.PaperWorkloadParams()
		p.N, p.M, p.MeanUL = 50, 4, 4
		w, err := robsched.GenerateWorkload(p, robsched.NewRNG(uint64(500+g)))
		if err != nil {
			t.Fatal(err)
		}
		heft, err := robsched.HEFT(w)
		if err != nil {
			t.Fatal(err)
		}
		schedules := []*robsched.Schedule{heft}
		for _, eps := range epsGrid {
			opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, eps)
			opt.MaxGenerations = 150
			opt.Stagnation = 0
			res, err := robsched.Solve(w, opt, robsched.NewRNG(uint64(600+g)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Schedule.Makespan() > eps*res.MHEFT+1e-9 {
				t.Fatalf("graph %d eps %g: constraint violated", g, eps)
			}
			schedules = append(schedules, res.Schedule)
		}
		ms, err := robsched.EvaluateAll(schedules, robsched.SimOptions{Realizations: 400}, robsched.NewRNG(uint64(700+g)))
		if err != nil {
			t.Fatal(err)
		}
		heftR1 += ms[0].R1 / graphs
		heftMean += ms[0].MeanMakespan / graphs
		for i := range epsGrid {
			agg[i].eps = epsGrid[i]
			agg[i].m0 += schedules[i+1].Makespan() / graphs
			agg[i].slack += schedules[i+1].AvgSlack() / graphs
			agg[i].r1 += ms[i+1].R1 / graphs
			agg[i].r2 += ms[i+1].R2 / graphs
			agg[i].meanM += ms[i+1].MeanMakespan / graphs
			agg[i].p95 += ms[i+1].P95 / graphs
		}
	}
	// Slack grows monotonically in ε.
	for i := 1; i < len(agg); i++ {
		if agg[i].slack <= agg[i-1].slack {
			t.Errorf("slack not increasing in ε: %g then %g", agg[i-1].slack, agg[i].slack)
		}
	}
	// Every ε beats HEFT on R1; larger ε beats smaller on average.
	for i, c := range agg {
		if c.r1 <= heftR1 {
			t.Errorf("eps %g: R1 %g does not beat HEFT %g", c.eps, c.r1, heftR1)
		}
		_ = i
	}
	if agg[2].r1 <= agg[0].r1 {
		t.Errorf("eps 2.0 R1 %g not above eps 1.0 R1 %g", agg[2].r1, agg[0].r1)
	}
	// The overall performance score prefers small ε when r → 1 and larger
	// ε when r → 0.
	best := func(r float64) float64 {
		bi, bp := 0, math.Inf(-1)
		for i, c := range agg {
			p := robsched.OverallPerformance(r, c.meanM, heftMean, c.r1, heftR1)
			if p > bp {
				bi, bp = i, p
			}
		}
		return agg[bi].eps
	}
	if b1, b0 := best(1), best(0); b1 > b0 {
		t.Errorf("best ε at r=1 (%g) exceeds best ε at r=0 (%g)", b1, b0)
	}
}

// TestIntegrationAllSolversOneWorkload pushes one workload through every
// scheduler in the library and validates mutual consistency.
func TestIntegrationAllSolversOneWorkload(t *testing.T) {
	p := robsched.PaperWorkloadParams()
	p.N, p.M, p.MeanUL = 40, 4, 4
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	heft, err := robsched.HEFT(w)
	if err != nil {
		t.Fatal(err)
	}
	cpop, err := robsched.CPOP(w)
	if err != nil {
		t.Fatal(err)
	}
	noins, err := robsched.HEFTNoInsertion(w)
	if err != nil {
		t.Fatal(err)
	}
	risk, err := robsched.RiskHEFT(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	random, err := robsched.RandomSchedule(w, robsched.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	gaOpt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.3)
	gaOpt.MaxGenerations = 80
	gaOpt.Stagnation = 0
	ga, err := robsched.Solve(w, gaOpt, robsched.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := robsched.SolveWeightedSum(w, 0.5, gaOpt, robsched.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	all := []*robsched.Schedule{heft, cpop, noins, risk, random, ga.Schedule, ws.Schedule}
	ms, err := robsched.EvaluateAll(all, robsched.SimOptions{Realizations: 200}, robsched.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m.MeanMakespan <= 0 || math.IsNaN(m.MeanMakespan) {
			t.Fatalf("scheduler %d produced degenerate metrics: %+v", i, m)
		}
		if m.MinMakespan > m.P50 || m.P50 > m.P99 {
			t.Fatalf("scheduler %d quantiles disordered", i)
		}
	}
	// Every schedule assigns all tasks.
	for i, s := range all {
		total := 0
		for q := 0; q < w.M(); q++ {
			total += len(s.ProcOrder(q))
		}
		if total != w.N() {
			t.Fatalf("scheduler %d covers %d/%d tasks", i, total, w.N())
		}
	}
}

// TestIntegrationDeterministicReproducibility: the same seeds regenerate
// byte-identical experiment tables, across worker counts.
func TestIntegrationDeterministicReproducibility(t *testing.T) {
	run := func(workers int) string {
		cfg := robsched.DefaultExperimentConfig()
		cfg.Gen.N, cfg.Gen.M = 20, 3
		cfg.Graphs = 2
		cfg.Realizations = 80
		cfg.ULs = []float64{2, 4}
		cfg.Eps = []float64{1.0, 1.5}
		cfg.GA.PopSize = 8
		cfg.GA.MaxGenerations = 20
		cfg.Workers = workers
		sw, err := cfg.RunSweep()
		if err != nil {
			t.Fatal(err)
		}
		fig4, err := sw.Fig4()
		if err != nil {
			t.Fatal(err)
		}
		return robsched.FormatSeries("fig4", "UL", fig4)
	}
	a, b := run(1), run(8)
	if a != b {
		t.Fatalf("experiment output depends on worker count:\n%s\nvs\n%s", a, b)
	}
}

// TestIntegrationWorkloadFileLifecycle exercises the JSON lifecycle:
// generate → write → read → schedule → write schedule → read schedule.
func TestIntegrationWorkloadFileLifecycle(t *testing.T) {
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 25, 3
	w, err := robsched.GenerateWorkload(p, robsched.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	var wbuf bytes.Buffer
	if err := robsched.WriteWorkload(&wbuf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := robsched.ReadWorkload(strings.NewReader(wbuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.2)
	opt.MaxGenerations = 40
	opt.Stagnation = 0
	res, err := robsched.Solve(w2, opt, robsched.NewRNG(78))
	if err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := robsched.WriteSchedule(&sbuf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	s2, err := robsched.ReadSchedule(strings.NewReader(sbuf.String()), w2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan() != res.Schedule.Makespan() || s2.AvgSlack() != res.Schedule.AvgSlack() {
		t.Fatal("schedule changed across serialization")
	}
	// And the round-tripped schedule evaluates identically under the same
	// seed.
	m1, err := robsched.Evaluate(res.Schedule, robsched.SimOptions{Realizations: 100}, robsched.NewRNG(79))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := robsched.Evaluate(s2, robsched.SimOptions{Realizations: 100}, robsched.NewRNG(79))
	if err != nil {
		t.Fatal(err)
	}
	if m1.MeanMakespan != m2.MeanMakespan {
		t.Fatal("round-tripped schedule evaluates differently")
	}
}

// TestIntegrationStructuredWorkloadsAllPipelines runs the structured
// graphs through generation, scheduling, repair and analysis.
func TestIntegrationStructuredWorkloadsAllPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	graphs := map[string]*robsched.Graph{}
	g1, err := robsched.GaussianElimination(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs["gauss"] = g1
	g2, err := robsched.FFT(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs["fft"] = g2
	g3, err := robsched.Stencil(5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs["stencil"] = g3
	for name, g := range graphs {
		r := robsched.NewRNG(uint64(len(name)))
		exec := robsched.ExecMatrix(g.N(), 4, 15, 0.5, 0.5, r)
		ul := robsched.ULMatrix(g.N(), 4, 3, 0.5, 0.5, r)
		w, err := robsched.NewWorkload(g, robsched.UniformSystem(4, 1), exec, ul)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := robsched.HEFT(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Analytic and MC agree within the documented bands.
		an := robsched.AnalyzeClark(s)
		mc, err := robsched.Evaluate(s, robsched.SimOptions{Realizations: 500}, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel := (an.Makespan.Mean - mc.MeanMakespan) / mc.MeanMakespan; rel < -0.05 || rel > 0.3 {
			t.Errorf("%s: Clark mean off by %+.3f", name, rel)
		}
		// Repair with a tight threshold stays valid and does not blow up.
		durs := robsched.RealizeDurations(w, r)
		o, err := robsched.ExecuteWithRepair(s, durs, robsched.RepairPolicy{Threshold: 0.05})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if o.Makespan <= 0 || o.Makespan > 50*s.Makespan() {
			t.Errorf("%s: repaired makespan %g implausible", name, o.Makespan)
		}
	}
}
