#!/bin/sh
# bench.sh — run the decode-path benchmarks with allocation stats and append
# the results to the BENCH_decode.json trajectory file. Run from the repo
# root; pass extra `go test` flags (e.g. -benchtime 10x) as arguments.
set -eu
cd "$(dirname "$0")"

go test -run '^$' \
    -bench 'BenchmarkDecode$|BenchmarkFromOrder$|BenchmarkEvaluatePopulation|BenchmarkSolveEpsilonConstraint$' \
    -benchmem "$@" ./internal/schedule ./internal/robust . \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_decode.json
