#!/bin/sh
# bench.sh — run the hot-path benchmarks with allocation stats and append
# the results to the per-area trajectory files: the decode path goes to
# BENCH_decode.json, the Monte-Carlo simulation path (batched realization
# kernel + full evaluation) to BENCH_sim.json, the end-to-end GA solve
# path (paper-scale ε-constraint run, cache on/off) to BENCH_ga.json, the
# observability overhead lane (solve and Monte-Carlo with telemetry on
# vs off, plus the no-op instrument microbenchmarks) to BENCH_obs.json,
# and the incremental-decode lane (delta vs full decode of GA children,
# operator microbenchmarks, paper solve with delta on vs off) to
# BENCH_delta.json. The multi-process scatter/gather lane (Monte-Carlo
# evaluation at 1/2/4/8 worker processes and an islands-GA solve sharded
# across workers, each against its in-process twin) goes to
# BENCH_dist.json; worker-side parallelism is pinned to 1 there, so the
# shard speedup reflects the processes (expect ~min(shards, cores)× on a
# multi-core box and pure overhead on one core). The same file carries the
# loopback-TCP lanes (the socket tax vs subprocess pipes — acceptance is
# within ~10%) and the pipeline latency matrix (injected 0/1/5/20ms RTT,
# strict depth-1 dispatch vs the RTT-derived credit window — pipelined
# must hold ≥2× depth-1 at 5ms). The scenario matrix (paper-scale
# Monte-Carlo evaluation for every workload family × duration model —
# workflow shapes and the general sampling path priced next to the
# random-uniform lane BENCH_sim tracks) goes to BENCH_scenarios.json.
# Run from the repo root; pass extra `go test` flags (e.g. -benchtime 10x)
# as arguments. Re-running on the same commit replaces that commit's entry
# in each trajectory instead of appending a duplicate.
set -eu
cd "$(dirname "$0")"

go test -run '^$' \
    -bench 'BenchmarkDecode$|BenchmarkFromOrder$|BenchmarkEvaluatePopulation|BenchmarkSolveEpsilonConstraint$' \
    -benchmem "$@" ./internal/schedule ./internal/robust . \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_decode.json

go test -run '^$' \
    -bench 'BenchmarkEvaluateAll$|BenchmarkRealizeBatch$|BenchmarkRealizeScalar$' \
    -benchmem "$@" ./internal/sim ./internal/schedule \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_sim.json

go test -run '^$' \
    -bench 'BenchmarkSolvePaper' \
    -benchmem "$@" . \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_ga.json

go test -run '^$' \
    -bench 'BenchmarkSolveObs|BenchmarkEvaluateAllObs|BenchmarkDisabledCounter|BenchmarkEnabledCounter|BenchmarkEnabledHistogram|BenchmarkTracerEvent' \
    -benchmem "$@" . ./internal/sim ./internal/obs \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_obs.json

go test -run '^$' \
    -bench 'BenchmarkDecodeDelta$|BenchmarkDecodeFull$|BenchmarkCrossover$|BenchmarkMutate$|BenchmarkSolvePaper/cache|BenchmarkSolvePaper/nodelta' \
    -benchmem "$@" ./internal/schedule ./internal/robust . \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_delta.json

go test -run '^$' \
    -bench 'BenchmarkDistEvaluateAll|BenchmarkDistEvaluateAllTCP|BenchmarkDistPipelineRTT|BenchmarkDistSolveIslands' \
    -benchmem "$@" ./internal/dist \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_dist.json -note "$(nproc) cores"

go test -run '^$' \
    -bench 'BenchmarkScenarioEvaluateAll' \
    -benchmem "$@" ./internal/scenario \
  | tee /dev/stderr \
  | go run ./cmd/benchjson -o BENCH_scenarios.json
