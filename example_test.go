package robsched_test

import (
	"fmt"

	"robsched"
)

// Example_quickstart schedules the deterministic 4-task diamond of the
// package tests with HEFT and prints the paper's schedule analysis.
func Example_quickstart() {
	b := robsched.NewGraphBuilder(4)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(0, 2, 4)
	b.MustAddEdge(1, 3, 1)
	b.MustAddEdge(2, 3, 3)
	g := b.MustBuild()

	exec, _ := robsched.MatrixFromRows([][]float64{{2, 3}, {3, 2}, {4, 2}, {1, 2}})
	w, _ := robsched.DeterministicWorkload(g, robsched.UniformSystem(2, 1), exec)

	s, _ := robsched.NewSchedule(w, []int{0, 0, 1, 0}, [][]int{{0, 1, 3}, {2}})
	fmt.Printf("schedule  %v\n", s)
	fmt.Printf("makespan  %g\n", s.Makespan())
	fmt.Printf("avg slack %g\n", s.AvgSlack())
	fmt.Printf("slack(v2) %g\n", s.Slack(1))
	// Output:
	// schedule  {{(v1,v2), (v2,v4)}, {v3}}
	// makespan  12
	// avg slack 1.5
	// slack(v2) 6
}

// Example_robustness generates a random uncertain workload, solves it with
// the bi-objective GA under ε = 1.3, and checks the ε-constraint.
func Example_robustness() {
	r := robsched.NewRNG(42)
	p := robsched.PaperWorkloadParams()
	p.N, p.M = 30, 4
	p.MeanUL = 4
	w, _ := robsched.GenerateWorkload(p, r)

	opt := robsched.PaperSolveOptions(robsched.EpsilonConstraint, 1.3)
	opt.MaxGenerations = 60
	opt.Stagnation = 0
	res, _ := robsched.Solve(w, opt, r)

	fmt.Printf("constraint holds: %v\n", res.Schedule.Makespan() <= 1.3*res.MHEFT)
	fmt.Printf("slack grew: %v\n", res.Schedule.AvgSlack() >= res.HEFT.AvgSlack())
	// Output:
	// constraint holds: true
	// slack grew: true
}
